package handoff

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mime"
	"mobigate/internal/netem"
	"mobigate/internal/services"
)

func newSession(t *testing.T, bw int64) (*Manager, *event.Manager, *recorder) {
	t.Helper()
	em := event.NewManager(nil)
	t.Cleanup(em.Close)
	rec := &recorder{name: "app"}
	em.Subscribe(event.NetworkVariation, rec)
	link := netem.MustNew(netem.Config{BandwidthBps: bw})
	m := NewManager(link, "wavelan", netem.Virtual, em, 100_000, "")
	return m, em, rec
}

type recorder struct {
	name string
	mu   sync.Mutex
	got  []string
}

func (r *recorder) SubscriberName() string { return r.name }
func (r *recorder) OnEvent(e event.ContextEvent) {
	r.mu.Lock()
	r.got = append(r.got, e.EventID)
	r.mu.Unlock()
}
func (r *recorder) events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.got))
	copy(out, r.got)
	return out
}

func msg(body string) *mime.Message {
	return mime.NewMessage(services.TypePlainText, []byte(body))
}

func TestHandoffSwitchesLink(t *testing.T) {
	m, _, _ := newSession(t, 1_000_000)
	oldLink, name := m.Current()
	if name != "wavelan" {
		t.Fatalf("network = %q", name)
	}
	next, err := m.Handoff(Notification{NetworkID: "gprs", BandwidthBps: 50_000, Delay: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cur, name := m.Current()
	if cur != next || name != "gprs" {
		t.Error("current link not switched")
	}
	if cur.Bandwidth() != 50_000 {
		t.Errorf("new bandwidth = %d", cur.Bandwidth())
	}
	if err := oldLink.Send(msg("x")); err != netem.ErrLinkClosed {
		t.Error("old link still accepts traffic")
	}
	handoffs, _ := m.Stats()
	if handoffs != 1 {
		t.Errorf("handoffs = %d", handoffs)
	}
}

func TestHandoffReplaysBacklogInOrder(t *testing.T) {
	m, em, _ := newSession(t, 1_000_000)
	// Five messages cross the old link but are not yet consumed.
	for i := 0; i < 5; i++ {
		if err := m.SendMessage(msg(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Handoff(Notification{NetworkID: "gprs", BandwidthBps: 50_000}); err != nil {
		t.Fatal(err)
	}
	// Two more after the switch.
	for i := 0; i < 2; i++ {
		if err := m.SendMessage(msg(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"pre-0", "pre-1", "pre-2", "pre-3", "pre-4", "post-0", "post-1"}
	for i, w := range want {
		d, err := m.Receive(2 * time.Second)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if string(d.Msg.Body()) != w {
			t.Fatalf("delivery %d = %q, want %q", i, d.Msg.Body(), w)
		}
	}
	_, replayed := m.Stats()
	if replayed != 5 {
		t.Errorf("replayed = %d", replayed)
	}
	em.Close()
}

func TestHandoffRaisesEvents(t *testing.T) {
	m, em, rec := newSession(t, 1_000_000) // above threshold
	// Down-grade: HANDOFF then LOW_BANDWIDTH.
	if _, err := m.Handoff(Notification{NetworkID: "gprs", BandwidthBps: 50_000}); err != nil {
		t.Fatal(err)
	}
	// Same-tier switch: only HANDOFF.
	if _, err := m.Handoff(Notification{NetworkID: "gprs2", BandwidthBps: 60_000}); err != nil {
		t.Fatal(err)
	}
	// Up-grade: HANDOFF then HIGH_BANDWIDTH.
	if _, err := m.Handoff(Notification{NetworkID: "wavelan", BandwidthBps: 2_000_000}); err != nil {
		t.Fatal(err)
	}
	em.Close()
	got := rec.events()
	want := []string{
		event.HANDOFF, event.LOW_BANDWIDTH,
		event.HANDOFF,
		event.HANDOFF, event.HIGH_BANDWIDTH,
	}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestHandoffInvalidNotification(t *testing.T) {
	m, _, _ := newSession(t, 1_000_000)
	if _, err := m.Handoff(Notification{NetworkID: "bad"}); err == nil {
		t.Error("zero-bandwidth notification accepted")
	}
	if _, err := m.Handoff(Notification{NetworkID: "bad", BandwidthBps: 1000, LossRate: 1.5}); err == nil {
		t.Error("invalid loss accepted")
	}
	// Session unharmed.
	if _, name := m.Current(); name != "wavelan" {
		t.Error("failed handoff changed network")
	}
	if err := m.SendMessage(msg("still works")); err != nil {
		t.Error(err)
	}
}

func TestSendDuringHandoffRetries(t *testing.T) {
	m, _, _ := newSession(t, 1<<20)
	const total = 600
	var wg sync.WaitGroup
	var sendErrs []error
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := m.SendMessage(msg(fmt.Sprintf("m%d", i))); err != nil {
				mu.Lock()
				sendErrs = append(sendErrs, err)
				mu.Unlock()
			}
		}
	}()
	// Concurrent drainer keeps the links from backing up.
	received := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for n < total {
			if _, err := m.Receive(2 * time.Second); err != nil {
				break
			}
			n++
		}
		received <- n
	}()
	for h := 0; h < 5; h++ {
		if _, err := m.Handoff(Notification{NetworkID: fmt.Sprintf("n%d", h), BandwidthBps: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(sendErrs) > 0 {
		t.Errorf("sends failed across handoffs: %v", sendErrs[0])
	}
	// Note: a delivery already handed to Receive's internal wait when the
	// old link closes is retried on the new link, so everything sent must
	// eventually arrive (no-loss synchronization).
	if n := <-received; n != total {
		t.Errorf("received %d of %d messages", n, total)
	}
}

// The Manager satisfies services.Sink, so a Communicator can send through it.
var _ services.Sink = (*Manager)(nil)
