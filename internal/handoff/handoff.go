// Package handoff implements the §8.2.1 recommendation of supporting
// wireless handoffs: when a mobile client with multiple wireless interfaces
// switches networks, the gateway must learn the new network's
// characteristics (the TranSend-style notification of §2.2.1), migrate the
// adaptation — re-evaluating bandwidth-dependent compositions through the
// event system — and keep the application state synchronized so that no
// in-flight message is lost.
//
// The Manager owns the session's current link. The gateway's Communicator
// sends through Manager.Sink(), which transparently follows handoffs;
// Handoff quiesces sending, replays undelivered messages from the old link
// onto the new one (in order, ahead of new traffic), re-raises the
// bandwidth context events, and resumes.
package handoff

import (
	"fmt"
	"sync"
	"time"

	"mobigate/internal/obs"

	"mobigate/internal/event"
	"mobigate/internal/mime"
	"mobigate/internal/netem"
)

// Notification carries the characteristics of the network the client
// switched to — the essential content of a vertical-handoff notification
// packet.
type Notification struct {
	// NetworkID names the new attachment (e.g. "wavelan", "gprs").
	NetworkID string
	// BandwidthBps is the expected throughput of the new network.
	BandwidthBps int64
	// Delay is the new one-way propagation delay.
	Delay time.Duration
	// LossRate is the new link's loss rate.
	LossRate float64
}

// Manager coordinates one session's movement between emulated links.
type Manager struct {
	events    *event.Manager
	threshold int64
	source    string

	// gate serializes handoffs against in-flight sends: senders hold the
	// read side for the duration of one Send, Handoff holds the write side
	// while it closes, drains and swaps links. This guarantees that no
	// message can land on the old link after the drain (quiescence).
	gate sync.RWMutex

	mu       sync.Mutex
	current  *netem.Link
	network  string
	mode     netem.Mode
	handoffs uint64
	replayed uint64
}

// NewManager starts a session on an initial link. threshold is the
// LOW_BANDWIDTH boundary (the §7.5 compressor threshold); source names the
// stream application the raised events are directed at ("" broadcasts).
func NewManager(initial *netem.Link, networkID string, mode netem.Mode, em *event.Manager, thresholdBps int64, source string) *Manager {
	return &Manager{
		events:    em,
		threshold: thresholdBps,
		source:    source,
		current:   initial,
		network:   networkID,
		mode:      mode,
	}
}

// Current returns the active link and network name.
func (m *Manager) Current() (*netem.Link, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current, m.network
}

// Stats returns completed handoffs and messages replayed across them.
func (m *Manager) Stats() (handoffs, replayed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handoffs, m.replayed
}

// SendMessage implements services.Sink: it always sends on the current
// link. During a handoff the call blocks until the switch completes, so
// post-handoff traffic is ordered after the replayed backlog.
func (m *Manager) SendMessage(msg *mime.Message) error {
	m.gate.RLock()
	m.mu.Lock()
	l := m.current
	m.mu.Unlock()
	err := l.Send(msg)
	m.gate.RUnlock()
	if err == netem.ErrLinkClosed {
		// The link was torn down by a handoff that slipped between gate
		// acquisitions; retry on the new link (nothing was transmitted).
		return m.SendMessage(msg)
	}
	return err
}

// Receive drains the next delivery from the current link.
func (m *Manager) Receive(timeout time.Duration) (netem.Delivery, error) {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		l := m.current
		m.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return netem.Delivery{}, fmt.Errorf("handoff: receive timed out after %v", timeout)
		}
		d, err := l.Receive(remaining)
		if err == netem.ErrLinkClosed {
			continue // a handoff swapped links under us; retry on the new one
		}
		return d, err
	}
}

// Handoff switches the session to the network described by n:
//
//  1. a new link is brought up with the notified characteristics;
//  2. the old link is closed and its undelivered messages are replayed
//     onto the new link, in order, ahead of any new traffic (state
//     synchronization — nothing in flight is lost);
//  3. HANDOFF is raised, and LOW_BANDWIDTH / HIGH_BANDWIDTH re-evaluated
//     against the threshold so bandwidth-dependent compositions migrate;
//  4. sending resumes on the new link.
func (m *Manager) Handoff(n Notification) (*netem.Link, error) {
	if n.BandwidthBps <= 0 {
		return nil, fmt.Errorf("handoff: notification lacks bandwidth")
	}
	// Quiesce: wait for in-flight sends, block new ones until the swap is
	// complete.
	m.gate.Lock()
	defer m.gate.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()

	old := m.current
	oldBelow := old.Bandwidth() < m.threshold

	next, err := netem.New(netem.Config{
		BandwidthBps: n.BandwidthBps,
		Delay:        n.Delay,
		LossRate:     n.LossRate,
		Mode:         m.mode,
	})
	if err != nil {
		return nil, fmt.Errorf("handoff: bringing up %s: %w", n.NetworkID, err)
	}

	// Quiesce and drain: close the old link, then replay everything that
	// had crossed it but was not yet consumed by the client.
	old.Close()
	for {
		d, ok := old.TryReceive()
		if !ok {
			break
		}
		if err := next.Send(d.Msg); err != nil {
			next.Close()
			return nil, fmt.Errorf("handoff: replaying backlog: %w", err)
		}
		m.replayed++
	}

	m.current = next
	m.network = n.NetworkID
	m.handoffs++
	obs.FlightRecord(obs.FlightHandoff, n.NetworkID,
		fmt.Sprintf("replayed %d", m.replayed), n.BandwidthBps)

	// Context events: the handoff itself, then bandwidth re-evaluation.
	if m.events != nil {
		_ = m.events.Raise(event.HANDOFF, m.source)
		newBelow := n.BandwidthBps < m.threshold
		if newBelow && !oldBelow {
			_ = m.events.Raise(event.LOW_BANDWIDTH, m.source)
		}
		if !newBelow && oldBelow {
			_ = m.events.Raise(event.HIGH_BANDWIDTH, m.source)
		}
	}
	return next, nil
}
