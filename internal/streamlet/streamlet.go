// Package streamlet implements the Streamlet base abstraction of thesis
// §6.1: the runtime wrapper that gives a service entity (a Processor) its
// identity, lifecycle (pause/activate/end), input/output message-queue
// bindings, and the glue that moves message references between the central
// pool and the channels. Streamlet pooling for stateless service entities
// (§3.3.4) and the streamlet directory (§3.3.7) live here too.
package streamlet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

// Gateway-wide streamlet metrics; per-instance process latency is a
// labeled histogram created per instance id in New.
var (
	mProcessedTotal  = obs.DefaultCounter(obs.MStreamProcessedTotal)
	mDroppedTotal    = obs.DefaultCounter(obs.MStreamDroppedTotal)
	mTypeErrorsTotal = obs.DefaultCounter(obs.MStreamTypeErrorsTotal)
)

// Input is one message arriving on a named input port.
type Input struct {
	Port string
	Msg  *mime.Message
}

// Emission is one message a processor sends to a named output port. An
// empty Port is resolved to the streamlet's sole output port.
type Emission struct {
	Port string
	Msg  *mime.Message
}

// Processor is the computational content of a streamlet — the processMsg()
// logic the streamlet author supplies (Figure 6-2). Process may return zero
// or more emissions; returning the input message (same pointer) forwards it
// without re-pooling.
type Processor interface {
	Process(in Input) ([]Emission, error)
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(in Input) ([]Emission, error)

// Process calls f.
func (f ProcessorFunc) Process(in Input) ([]Emission, error) { return f(in) }

// Configurable is the control interface of §8.2.1: processors that
// implement it accept operation parameters from the coordinator — at
// instantiation (the declaration's param-* attributes) or at runtime —
// separately from the data ports messages flow through.
type Configurable interface {
	// SetParam sets one named operation parameter; unknown names or
	// unparsable values are errors.
	SetParam(name, value string) error
}

// Unwrapper is implemented by processor decorators (such as the transcode
// cache's memo wrapper); Unwrap returns the decorated processor.
type Unwrapper interface {
	Unwrap() Processor
}

// Base returns the innermost processor behind any decorator chain. The
// runtime consults Base for capability interfaces tied to the computation
// itself (Peered, Configurable), so decorators stay transparent.
func Base(p Processor) Processor {
	for {
		u, ok := p.(Unwrapper)
		if !ok {
			return p
		}
		inner := u.Unwrap()
		if inner == nil {
			return p
		}
		p = inner
	}
}

// Configure applies a parameter map to a processor through its control
// interface. A non-nil params map on a non-Configurable processor is an
// error (the declaration promises tunability the implementation lacks).
func Configure(proc Processor, params map[string]string) error {
	if len(params) == 0 {
		return nil
	}
	c, ok := proc.(Configurable)
	if !ok {
		c, ok = Base(proc).(Configurable)
	}
	if !ok {
		return fmt.Errorf("streamlet: processor %T has no control interface for params %v", proc, params)
	}
	// Deterministic application order for reproducible failures.
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := c.SetParam(k, params[k]); err != nil {
			return fmt.Errorf("streamlet: param %s=%q: %w", k, params[k], err)
		}
	}
	return nil
}

// Peered is implemented by processors whose transformation must be reversed
// by a peer streamlet at the client (§6.5); the runtime appends the peer ID
// to every emitted message's Content-Peers chain.
type Peered interface {
	PeerID() string
}

// State is the streamlet lifecycle state.
type State int32

const (
	// StateCreated is the initial state before Start.
	StateCreated State = iota
	// StateActive is running and processing messages.
	StateActive
	// StatePaused holds processing; queued messages wait (Figure 7-4 uses
	// this during reconfiguration).
	StatePaused
	// StateEnded is terminal.
	StateEnded
)

var stateNames = [...]string{"created", "active", "paused", "ended"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Streamlet is the runtime instance: the stub on the coordination plane
// (its queue bindings) plus its processor on the execution plane.
type Streamlet struct {
	id   string
	decl *mcl.StreamletDecl
	proc Processor
	pool *msgpool.Pool

	// ErrorHandler, when set before Start, receives processing errors (the
	// message that caused one is dropped). Defaults to discarding.
	ErrorHandler func(error)

	// typeCheck, when non-nil, enforces the §4.1 runtime check: every
	// message entering a declared input port must carry a Content-Type
	// equal to or specializing the port's declared type.
	typeCheck *mime.Registry
	typeErrs  atomic.Uint64

	mu    sync.Mutex
	cond  *sync.Cond
	state State
	ins   map[string]*queue.Queue
	outs  map[string]*queue.Queue
	pumps map[string]chan struct{} // per-input stop channels
	// fetchGate is the pause generation signal: open while active, closed
	// by Pause, replaced by Activate. Pumps arm their blocking fetch with
	// it so a pause retracts in-progress fetches instead of letting them
	// pull messages a reconfiguration drain expects to stay queued.
	fetchGate chan struct{}

	work chan workItem // unbuffered handoff from pumps to the worker
	// workB is the batched handoff (nil unless batch > 1 with the serial
	// worker): pumps drain up to batch items in one FetchN and hand the
	// whole slice over in one channel operation (see batch.go).
	workB chan *workBatch
	done  chan struct{}
	wg    sync.WaitGroup

	// sup is the installed fault supervision (nil selects the default:
	// panic containment only). Swapped atomically so Supervise/OnFault are
	// safe against a running worker.
	sup atomic.Pointer[supervision]

	// workers is the execution-plane fan-out width, fixed before Start
	// (from the declaration's workers attribute or SetWorkers). 1 selects
	// the classic serial worker; N > 1 runs N workers feeding the
	// resequencer, which restores fetch order before anything is emitted
	// downstream (see parallel.go).
	workers int
	// batch is the handoff batch size, fixed before Start (from the
	// declaration's batch attribute or SetBatch). 1 selects today's
	// one-message-per-handoff pump; N > 1 drains up to N items per queue
	// lock and — in serial mode — flushes the batch's emissions downstream
	// in one batched post (see batch.go). FIFO order is preserved in both
	// directions, so unlike workers this composes with STATEFUL streamlets.
	batch int
	// seq stamps fetch order onto work items in parallel mode; the
	// resequencer releases completions in seq order.
	seq atomic.Uint64
	// comps carries finished parallel executions to the resequencer
	// (nil in serial mode).
	comps chan *completion
	// tokens is the parallel-mode admission gate: pumps acquire one per
	// fetched item, the resequencer releases it after the item is fully
	// handled. Capacity workers, so at most workers items are in flight and
	// the resequencer parks at most workers-1 completions even when the
	// head message stalls.
	tokens chan struct{}
	// reseqPeak is the high-water mark of completions parked in the
	// resequencer waiting for an earlier sequence number.
	reseqPeak atomic.Int64

	faultPanics   atomic.Uint64
	faultStalls   atomic.Uint64
	faultRetries  atomic.Uint64
	faultDropped  atomic.Uint64
	faultBypassed atomic.Uint64

	processing atomic.Bool
	// inflight counts messages fetched from an input queue but not yet
	// fully handled — including those parked in the pump→worker handoff,
	// which input-queue emptiness alone cannot see.
	inflight  atomic.Int64
	processed atomic.Uint64
	dropped   atomic.Uint64

	// procHist is the per-instance process-latency histogram, shared with
	// every instance of the same id (per-session deployments reuse MCL
	// instance variable names, so the series aggregates across sessions).
	procHist *obs.Histogram
	// procTick drives sampled latency observation: the first samples after
	// start are always recorded (so low-traffic instances still report),
	// then 1 in procSampleInterval. With tracing off this also elides the
	// two time.Now calls around Process.
	procTick atomic.Uint64
}

// Process-latency sampling parameters (see procTick).
const (
	procSampleWarmup   = 16
	procSampleInterval = 16
)

type workItem struct {
	port  string
	msgID string
	// src is the queue the item came from; acked when handling completes.
	src *queue.Queue
	// wait is how long the message sat in src before the pump fetched it;
	// it becomes the queue-wait field of the message's trace hop.
	wait time.Duration
	// enqueuedNs is the item's enqueue stamp on the obs clock (0 when
	// unstamped); it anchors the queue-wait span, which then also covers
	// the pump→worker handoff.
	enqueuedNs int64
	// seq is the fetch-order stamp in parallel mode (unused when serial).
	seq uint64
}

// spanEmit carries the span identity emit needs to parent forward spans
// (nil when spans are off or the message is outside a trace).
type spanEmit struct {
	traceID    uint64
	procSpanID uint64
}

// New creates a streamlet instance. id is the instance variable name from
// the stream configuration, decl its MCL declaration (may be nil for
// ad-hoc instances), proc its computational content, and pool the shared
// message pool.
func New(id string, decl *mcl.StreamletDecl, proc Processor, pool *msgpool.Pool) *Streamlet {
	s := &Streamlet{
		id:        id,
		decl:      decl,
		proc:      proc,
		pool:      pool,
		workers:   1,
		batch:     1,
		ins:       make(map[string]*queue.Queue),
		outs:      make(map[string]*queue.Queue),
		pumps:     make(map[string]chan struct{}),
		work:      make(chan workItem),
		done:      make(chan struct{}),
		fetchGate: make(chan struct{}),
		procHist:  obs.DefaultHistogram(obs.MStreamletProcessSeconds, obs.Labels{"streamlet": id}),
	}
	if decl != nil && decl.Workers > 1 {
		s.workers = decl.Workers
	}
	if decl != nil && decl.Batch > 1 {
		s.batch = decl.Batch
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ID returns the instance identifier.
func (s *Streamlet) ID() string { return s.id }

// Decl returns the MCL declaration (may be nil).
func (s *Streamlet) Decl() *mcl.StreamletDecl { return s.decl }

// Processor returns the computational content.
func (s *Streamlet) Processor() Processor { return s.proc }

// State returns the current lifecycle state.
func (s *Streamlet) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Processed returns the number of messages processed.
func (s *Streamlet) Processed() uint64 { return s.processed.Load() }

// ProcessLatency returns the instance's process-latency distribution (the
// Figure 7-2 per-streamlet cost), drawn from the shared metrics registry.
func (s *Streamlet) ProcessLatency() obs.HistogramSnapshot { return s.procHist.Snapshot() }

// EnableTypeCheck turns on runtime message/port type matching against the
// given registry (nil selects the default registry). Messages that fail
// the check are dropped and reported through the ErrorHandler.
func (s *Streamlet) EnableTypeCheck(reg *mime.Registry) {
	if reg == nil {
		reg = mime.DefaultRegistry()
	}
	s.mu.Lock()
	s.typeCheck = reg
	s.mu.Unlock()
}

// TypeErrors returns how many messages failed the runtime type check.
func (s *Streamlet) TypeErrors() uint64 { return s.typeErrs.Load() }

// Quiesced reports that no fetched message is awaiting or undergoing
// processing. A paused streamlet quiesces once its in-flight messages (if
// any) finish; new input stays parked in its queues.
func (s *Streamlet) Quiesced() bool {
	if s.inflight.Load() != 0 {
		return false
	}
	s.mu.Lock()
	ins := make([]*queue.Queue, 0, len(s.ins))
	for _, q := range s.ins {
		ins = append(ins, q)
	}
	s.mu.Unlock()
	for _, q := range ins {
		if q.InFlight() != 0 {
			return false
		}
	}
	return true
}

// Dropped returns the number of emissions dropped by full output queues.
func (s *Streamlet) Dropped() uint64 { return s.dropped.Load() }

// SetIn binds an input port to a queue (setIn of Figure 6-2): the queue's
// consumer count is incremented and a pump goroutine begins fetching. Any
// previous binding of the port is detached first.
func (s *Streamlet) SetIn(port string, q *queue.Queue) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachInLocked(port)
	s.ins[port] = q
	q.IncConsumer()
	if s.state == StateActive || s.state == StatePaused {
		s.startPumpLocked(port, q)
	}
}

// SetOut binds an output port to a queue (setOut): the queue's producer
// count is incremented.
func (s *Streamlet) SetOut(port string, q *queue.Queue) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.outs[port]; ok {
		old.DecProducer()
	}
	s.outs[port] = q
	q.IncProducer()
}

// DetachIn unbinds an input port; the pump stops and the queue's consumer
// count is decremented.
func (s *Streamlet) DetachIn(port string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachInLocked(port)
}

func (s *Streamlet) detachInLocked(port string) {
	if stop, ok := s.pumps[port]; ok {
		close(stop)
		delete(s.pumps, port)
		// A pump parked in fetchableGate (paused) only re-checks its stop
		// channel on a cond wake.
		s.cond.Broadcast()
	}
	if q, ok := s.ins[port]; ok {
		q.DecConsumer()
		delete(s.ins, port)
	}
}

// DetachOut unbinds an output port.
func (s *Streamlet) DetachOut(port string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.outs[port]; ok {
		q.DecProducer()
		delete(s.outs, port)
	}
}

// Ins returns a copy of the current input-port bindings.
func (s *Streamlet) Ins() map[string]*queue.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*queue.Queue, len(s.ins))
	for p, q := range s.ins {
		out[p] = q
	}
	return out
}

// Outs returns a copy of the current output-port bindings.
func (s *Streamlet) Outs() map[string]*queue.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*queue.Queue, len(s.outs))
	for p, q := range s.outs {
		out[p] = q
	}
	return out
}

// In returns the queue bound to an input port (nil if unbound).
func (s *Streamlet) In(port string) *queue.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ins[port]
}

// Out returns the queue bound to an output port (nil if unbound).
func (s *Streamlet) Out(port string) *queue.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outs[port]
}

// Start activates the streamlet: the worker goroutine runs and pumps start
// on every bound input.
func (s *Streamlet) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateCreated {
		return
	}
	s.state = StateActive
	if s.batch > 1 && s.workers == 1 {
		// Serial batch mode: pumps hand whole []workItem slices to the
		// worker through workB. (Parallel mode batches only the queue drain;
		// items still fan out one at a time through work — see batch.go.)
		s.workB = make(chan *workBatch)
	}
	if s.workers > 1 {
		// Parallel mode: N workers race on the handoff channel; the
		// resequencer restores fetch order before emissions leave.
		s.comps = make(chan *completion, s.workers*2)
		s.tokens = make(chan struct{}, s.workers)
		s.wg.Add(s.workers + 1)
		for i := 0; i < s.workers; i++ {
			go s.parallelWorker()
		}
		go s.resequencer()
	} else {
		s.wg.Add(1)
		go s.worker()
	}
	for port, q := range s.ins {
		s.startPumpLocked(port, q)
	}
}

// startPumpLocked launches the fetch loop for one input port.
func (s *Streamlet) startPumpLocked(port string, q *queue.Queue) {
	if _, running := s.pumps[port]; running {
		return
	}
	stop := make(chan struct{})
	s.pumps[port] = stop
	par := s.workers > 1 // immutable once started
	if s.batch > 1 {
		// Batched drain: one FetchN per queue lock instead of one Fetch per
		// message (batch.go). The single-item pump below stays byte-for-byte
		// the batch = 1 path.
		s.wg.Add(1)
		go s.batchPump(port, q, stop, par)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			// Drain-then-park: a paused streamlet stops pulling new input.
			// Whatever was already fetched drains through the worker; the
			// rest stays observable in the queues for quiesce checks.
			gate, live := s.fetchableGate(stop)
			if !live {
				return
			}
			it, ok := q.FetchGated(stop, gate)
			if !ok {
				if stopped(stop) || q.Closed() {
					return
				}
				continue // the pause gate fired: park until reactivated
			}
			s.inflight.Add(1)
			item := workItem{port: port, msgID: it.MsgID, src: q, wait: it.Wait, enqueuedNs: it.EnqueuedNs()}
			if par {
				// Fetch order is the order the resequencer must restore.
				// Assigned here (one pump per port fetches serially) so
				// per-port FIFO survives the racy handoff to N workers.
				item.seq = s.seq.Add(1) - 1
				// Admission gate: without it a stalled head message would
				// let the other workers run arbitrarily far ahead and the
				// resequencer's parked set would grow without bound.
				select {
				case s.tokens <- struct{}{}:
				case <-s.done:
					s.inflight.Add(-1)
					q.Ack()
					return
				}
			}
			select {
			case s.work <- item:
			case <-stop:
				// The item was fetched but the pump is being detached;
				// putting the reference back would reorder, so hand it to
				// the worker anyway before exiting.
				select {
				case s.work <- item:
				case <-s.done:
					s.inflight.Add(-1)
					q.Ack() // abandoned: account it as handled
					return
				}
				return
			case <-s.done:
				s.inflight.Add(-1)
				q.Ack()
				return
			}
		}
	}()
}

// Pause suspends input intake (the pause lifecycle method). Closing the
// fetch gate retracts every pump's blocking fetch, so new messages keep
// accumulating on the input queues; messages already fetched still drain
// through the worker, which is what lets a paused streamlet quiesce.
func (s *Streamlet) Pause() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateActive {
		s.state = StatePaused
		close(s.fetchGate)
		s.cond.Broadcast()
		obs.FlightRecord(obs.FlightSuspend, s.id, "", 0)
	}
}

// Activate resumes processing after a Pause.
func (s *Streamlet) Activate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StatePaused {
		s.state = StateActive
		s.fetchGate = make(chan struct{})
		s.cond.Broadcast()
		obs.FlightRecord(obs.FlightActivate, s.id, "", 0)
	}
}

// fetchableGate parks the calling pump while the streamlet is paused and
// returns the gate channel to arm the next fetch with. live=false means
// the pump should exit (its stop fired or the streamlet ended).
func (s *Streamlet) fetchableGate(stop <-chan struct{}) (gate <-chan struct{}, live bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state == StatePaused {
		if stopped(stop) {
			return nil, false
		}
		s.cond.Wait()
	}
	if stopped(stop) || s.state != StateActive {
		return nil, false
	}
	return s.fetchGate, true
}

func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// CanTerminate evaluates the Figure 6-8 prerequisites for safe removal:
// every message posted to a bound input queue has been fully handled
// (posted == acked covers queued, handoff, and in-processing states with
// no gaps), and nothing fetched from a since-detached queue is pending.
func (s *Streamlet) CanTerminate() bool {
	s.mu.Lock()
	ins := make([]*queue.Queue, 0, len(s.ins))
	for _, q := range s.ins {
		ins = append(ins, q)
	}
	s.mu.Unlock()
	if s.inflight.Load() != 0 {
		return false
	}
	for _, q := range ins {
		if q.Outstanding() != 0 {
			return false
		}
	}
	return true
}

// End terminates the streamlet (the end lifecycle method). All pumps and
// the worker stop; bound queues are detached. Messages already fetched are
// abandoned — callers that must avoid message loss check CanTerminate (or
// use stream-level draining) before calling End.
func (s *Streamlet) End() {
	s.mu.Lock()
	if s.state == StateEnded {
		s.mu.Unlock()
		return
	}
	prev := s.state
	s.state = StateEnded
	for port := range s.pumps {
		close(s.pumps[port])
		delete(s.pumps, port)
	}
	for port, q := range s.ins {
		q.DecConsumer()
		delete(s.ins, port)
	}
	for port, q := range s.outs {
		q.DecProducer()
		delete(s.outs, port)
	}
	close(s.done)
	s.cond.Broadcast()
	s.mu.Unlock()
	if prev != StateCreated {
		s.wg.Wait()
	}
}

// worker is the serial processMsg loop (workers == 1).
func (s *Streamlet) worker() {
	defer s.wg.Done()
	// The worker owns its deadline-executor slot; an in-flight (stalled)
	// call finishes on its own, discards its result, and exits.
	slot := &execSlot{}
	defer slot.close()
	// Batch-mode emission buffering, owned by this goroutine and reused
	// across batches (allocation-free steady state). Nil sink on the
	// single-item path keeps emissions posting immediately, as today.
	var sink emitSink
	for {
		select {
		case <-s.done:
			return
		case it := <-s.work:
			// Paused streamlets still drain items already fetched — the
			// pause gate guarantees no new ones arrive — so reconfiguration
			// drains terminate. Only termination abandons work.
			if s.State() == StateEnded {
				s.inflight.Add(-1)
				it.src.Ack() // abandoned on shutdown
				return
			}
			c := s.produce(it, slot)
			s.finish(&c, nil)
			s.inflight.Add(-1)
			it.src.Ack()
		case wb := <-s.workB: // nil channel unless serial batch mode
			if !s.runBatch(wb, slot, &sink) {
				return
			}
		}
	}
}

// completion is the outcome of the parallel-safe stage of one work item
// (produce): pool fetch, type check, and the supervised Process call. The
// serial stage (finish) — counters, trace/span bookkeeping, and downstream
// emission — runs strictly in fetch order: inline on the serial worker, or
// on the resequencer in parallel mode.
type completion struct {
	it   workItem
	res  procRes
	skip bool // pool fetch or type check failed; nothing left to do

	tracing     bool
	sctx        obs.SpanContext
	inChain     string
	session     string
	bytesIn     int
	procStartNs int64
	procDur     time.Duration
}

// produce runs everything that is safe to run concurrently for one work
// item, through the supervised Process call, and captures what finish needs.
func (s *Streamlet) produce(it workItem, slot *execSlot) completion {
	s.processing.Store(true)
	defer s.processing.Store(false)
	c := completion{it: it}
	msg, err := s.pool.Get(it.msgID)
	if err != nil {
		s.fail(fmt.Errorf("streamlet %s: %w", s.id, err))
		c.skip = true
		return c
	}
	if err := s.checkInputType(it.port, msg); err != nil {
		s.typeErrs.Add(1)
		mTypeErrorsTotal.Inc()
		s.fail(err)
		s.pool.Remove(it.msgID)
		c.skip = true
		return c
	}
	c.tracing = obs.TracingEnabled()
	if obs.SpansEnabled() {
		// Only messages already inside a trace (stamped at the inlet) grow
		// spans; everything else pays a single header lookup.
		c.sctx = obs.ParseSpanContext(msg.Header(mime.HeaderSpanContext))
	}
	spans := c.sctx.Valid()
	if c.tracing || spans {
		// Read everything the trace needs before Process runs: a terminal
		// sink may hand the message to another goroutine, after which it
		// must not be touched.
		c.inChain = msg.Header(obs.TraceHeader)
		c.session = msg.Session()
		c.bytesIn = msg.Len()
	}
	// The trace hop needs the exact per-message duration; the histogram is
	// content with a sample. Without either consumer, skip the clock reads.
	tick := s.procTick.Add(1)
	sampleHist := tick <= procSampleWarmup || tick%procSampleInterval == 0
	var procStart time.Time
	if c.tracing || sampleHist || spans {
		procStart = time.Now()
		if spans {
			c.procStartNs = obs.MonoNow()
		}
	}
	c.res = s.supervised(Input{Port: it.port, Msg: msg}, slot)
	if c.tracing || sampleHist || spans {
		c.procDur = time.Since(procStart)
	}
	if sampleHist {
		s.procHist.Observe(c.procDur.Seconds())
	}
	return c
}

// finish is the serial stage: fault disposition, counters, trace/span
// bookkeeping, and downstream emission. Callers guarantee finish runs in
// fetch order (that is the resequencer's whole job). A nil sink posts each
// emission immediately (the classic path); a non-nil sink defers the posts
// into the batch's flush (see batch.go), leaving every other side effect —
// pool forward, peer chain, supersede accounting — exactly in place.
func (s *Streamlet) finish(c *completion, sink *emitSink) {
	if c.skip {
		return
	}
	it := c.it
	res := c.res
	if res.aborted {
		// The streamlet ended mid-call: the message is abandoned exactly as
		// End documents; its pool entry stays for stream-level cleanup.
		return
	}
	if res.err != nil {
		// Fault accounting (dropped counts, fault counters, OnFault) already
		// happened inside the supervisor; here the error surfaces and the
		// pool entry is released.
		s.fail(fmt.Errorf("streamlet %s: process: %w", s.id, res.err))
		s.pool.Remove(it.msgID)
		return
	}
	emissions := res.emissions
	if !res.bypassed {
		s.processed.Add(1)
		mProcessedTotal.Inc()
	}

	if c.tracing {
		s.trace(it, c.session, emissions, c.inChain, c.bytesIn, c.procDur)
	}
	var sp *spanEmit
	if c.sctx.Valid() {
		sp = s.span(it, c.sctx, c.session, emissions, c.bytesIn, c.procStartNs, c.procDur)
	}

	peerID := ""
	// A bypassed message was not transformed, so the peer chain must not
	// promise a reversal at the client.
	if p, ok := Base(s.proc).(Peered); ok && !res.bypassed {
		peerID = p.PeerID()
	}

	kept := false
	superseded := make(map[string]bool, len(emissions))
	for _, em := range emissions {
		if em.Msg == nil {
			continue
		}
		if em.Msg.ID == it.msgID {
			kept = true
		}
		if s.emitTo(em, peerID, sp, sink) {
			superseded[em.Msg.ID] = true
		}
	}
	if !kept {
		// Terminal hop: the message may have escaped to another goroutine
		// inside Process (a sink pushing onto a link), so only the pool
		// entry is dropped — the body is never recycled here.
		s.pool.Remove(it.msgID)
	}
	// A by-value pool forwards deep copies; the originals' pool entries are
	// superseded once the copies are on the wire. A superseded original is
	// dead — its deep copy travels onward and processors must not retain
	// input bodies past Process — so its pooled body is recycled.
	for id := range superseded {
		if m := s.pool.Take(id); m != nil {
			m.Recycle()
		}
	}
}

// trace appends this hop to the message's trace chain and files the chain
// in the shared trace store under the message's session. This is purely
// coordination-plane bookkeeping: Processor code never sees or maintains
// trace state, mirroring how the runtime (not the service entity) manages
// the Content-Peers chain.
func (s *Streamlet) trace(it workItem, session string, emissions []Emission, inChain string, bytesIn int, procDur time.Duration) {
	bytesOut := 0
	for _, em := range emissions {
		if em.Msg != nil {
			bytesOut += em.Msg.Len()
		}
	}
	chain := obs.AppendHop(inChain, obs.Hop{
		Streamlet: s.id,
		QueueWait: it.wait,
		Process:   procDur,
		BytesIn:   bytesIn,
		BytesOut:  bytesOut,
	})
	store := obs.Traces()
	emitted := false
	keptInput := false
	for _, em := range emissions {
		if em.Msg == nil {
			continue
		}
		// The chain travels with the message, next to Content-Peers; a
		// processor that minted a fresh message inherits the input's chain.
		em.Msg.SetHeader(obs.TraceHeader, chain)
		if sess := em.Msg.Session(); session == "" {
			session = sess
		}
		store.Record(session, em.Msg.ID, chain)
		emitted = true
		if em.Msg.ID == it.msgID {
			keptInput = true
		}
	}
	switch {
	case !emitted:
		// Terminal hop (a sink such as the communicator): the message may
		// already have escaped to another goroutine inside Process (e.g.
		// pushed onto a link), so it must not be mutated here — only the
		// store carries the complete record, final hop included.
		store.Record(session, it.msgID, chain)
	case !keptInput:
		// The transformation changed the message identity; drop the stale
		// partial chain so per-hop aggregations do not double-count.
		store.Forget(session, it.msgID)
	}
}

// span records this hop's queue-wait and process spans and stamps every
// emission with the downstream span context (parent = this hop's process
// span). At a terminal hop — no emissions, the message left the gateway or
// died here — it instead closes the end-to-end latency against the
// session's configured budget. Like trace, this is coordination-plane
// bookkeeping only; Processor code never sees span state.
func (s *Streamlet) span(it workItem, sctx obs.SpanContext, session string, emissions []Emission, bytesIn int, procStartNs int64, procDur time.Duration) *spanEmit {
	col := obs.Spans()
	// The queue span runs from the enqueue stamp to the start of Process,
	// so it also covers the pump→worker handoff, not just the ring wait.
	qStart := it.enqueuedNs
	if qStart == 0 {
		qStart = procStartNs - int64(it.wait)
	}
	qid := col.NextID()
	col.Record(obs.Span{
		TraceID: sctx.TraceID, SpanID: qid, ParentID: sctx.ParentID,
		Kind: obs.SpanQueue, Site: col.Site(), Name: it.src.Name(),
		StartNs: qStart, DurNs: procStartNs - qStart, Bytes: bytesIn,
	})
	pid := col.NextID()
	col.Record(obs.Span{
		TraceID: sctx.TraceID, SpanID: pid, ParentID: qid,
		Kind: obs.SpanProcess, Site: col.Site(), Name: s.id,
		StartNs: procStartNs, DurNs: int64(procDur), Bytes: bytesIn,
	})
	next := ""
	for _, em := range emissions {
		if em.Msg == nil {
			continue
		}
		if next == "" {
			next = obs.EncodeSpanContext(obs.SpanContext{TraceID: sctx.TraceID, ParentID: pid, StartNs: sctx.StartNs})
		}
		em.Msg.SetHeader(mime.HeaderSpanContext, next)
	}
	if next == "" {
		// Terminal hop: the whole server chain is behind this message, so
		// its end-to-end latency is known — feed the SLO tracker (a no-op
		// unless a budget is configured for the session). The message itself
		// may already have escaped inside Process and is not touched.
		obs.SLO().Observe(session, col.Now()-sctx.StartNs)
		return nil
	}
	return &spanEmit{traceID: sctx.TraceID, procSpanID: pid}
}

// emitTo forwards one emission; it reports whether the pool handed a deep
// copy downstream (by-value mode), in which case the original's pool entry
// is superseded. A non-nil sp wraps the pool forward and queue post in a
// forward span parented under this hop's process span. A non-nil sink
// defers the queue post (only the post — the pool forward and peer chain
// happen here either way) into the batch flush; the supersede verdict is
// known at Forward time, so it is identical on both paths.
func (s *Streamlet) emitTo(em Emission, peerID string, sp *spanEmit, sink *emitSink) (copied bool) {
	q := s.resolveOut(em.Port)
	if q == nil {
		// Open circuit at runtime: the §5.2.2 condition the semantic model
		// exists to prevent. Surface it rather than losing silently.
		s.fail(fmt.Errorf("streamlet %s: no queue bound to output port %q; message %s lost",
			s.id, em.Port, em.Msg.ID))
		s.pool.Remove(em.Msg.ID)
		return false
	}
	var fwdStart int64
	if sp != nil {
		fwdStart = obs.MonoNow()
	}
	if peerID != "" {
		em.Msg.PushPeer(peerID)
	}
	// Body length is read before Post: once the post lands, the message is
	// owned downstream and must not be touched.
	size := em.Msg.Len()
	s.pool.Put(em.Msg)
	fid, err := s.pool.Forward(em.Msg.ID)
	if err != nil {
		s.fail(err)
		return false
	}
	if sink != nil {
		sink.add(sinkEntry{q: q, fid: fid, origID: em.Msg.ID, size: size, sp: sp})
		return fid != em.Msg.ID
	}
	if err := q.Post(fid, size, s.done); err != nil {
		s.dropped.Add(1)
		mDroppedTotal.Inc()
		if fid != em.Msg.ID {
			// The dropped deep copy never left the pool; reclaim its body.
			if c := s.pool.Take(fid); c != nil {
				c.Recycle()
			}
		} else {
			s.pool.Remove(fid)
		}
		if err != queue.ErrDropped {
			s.fail(fmt.Errorf("streamlet %s: post to %s: %w", s.id, q.Name(), err))
		}
		// The post failed; treat the original as superseded anyway when a
		// copy was attempted, so by-value pools do not accumulate.
	} else if sp != nil {
		col := obs.Spans()
		col.Record(obs.Span{
			TraceID: sp.traceID, SpanID: col.NextID(), ParentID: sp.procSpanID,
			Kind: obs.SpanForward, Site: col.Site(), Name: q.Name(),
			StartNs: fwdStart, DurNs: obs.MonoNow() - fwdStart, Bytes: size,
		})
	}
	return fid != em.Msg.ID
}

// resolveOut maps an emission port to a queue; "" resolves to the sole
// bound output.
func (s *Streamlet) resolveOut(port string) *queue.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port != "" {
		return s.outs[port]
	}
	if len(s.outs) == 1 {
		for _, q := range s.outs {
			return q
		}
	}
	return nil
}

// checkInputType enforces the runtime port-type check of §4.1 when enabled
// and a declaration is available for the port.
func (s *Streamlet) checkInputType(port string, msg *mime.Message) error {
	s.mu.Lock()
	reg := s.typeCheck
	s.mu.Unlock()
	if reg == nil || s.decl == nil {
		return nil
	}
	p, ok := s.decl.Port(port)
	if !ok {
		return nil
	}
	ct := msg.ContentType()
	if !reg.SubtypeOf(ct, p.Type) {
		return fmt.Errorf("streamlet %s: message %s type %s violates port %s : %s; message dropped",
			s.id, msg.ID, ct, port, p.Type)
	}
	return nil
}

func (s *Streamlet) fail(err error) {
	if s.ErrorHandler != nil {
		s.ErrorHandler(err)
	}
}
