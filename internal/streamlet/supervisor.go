package streamlet

// This file is the streamlet supervisor: the coordination plane's fault
// boundary around Processor code. Every Process call runs behind a recover
// (a panicking service entity must never take down the gateway process) and
// optionally behind a per-message deadline; what happens to the failing
// message is a per-streamlet policy — fail, retry with capped backoff, drop,
// or bypass. Terminal fault outcomes are reported through the OnFault hook
// so the stream layer can raise ExecutionFault context events and self-heal
// through the Figure 7-4 reconfiguration protocol. Fault policy thus lives
// in the coordination plane, exogenous to service code, in the style of
// Reo-like exogenous coordination.

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"mobigate/internal/obs"
)

// Fault-supervision metrics (gateway-wide; per-streamlet counts are on the
// instance).
var (
	mFaultPanics   = obs.DefaultCounter(obs.MFaultPanicsTotal)
	mFaultStalls   = obs.DefaultCounter(obs.MFaultStallsTotal)
	mFaultRetries  = obs.DefaultCounter(obs.MFaultRetriesTotal)
	mFaultDropped  = obs.DefaultCounter(obs.MFaultDroppedTotal)
	mFaultBypassed = obs.DefaultCounter(obs.MFaultBypassedTotal)
)

// Policy selects what the supervisor does with a message whose Process call
// faulted (panicked, errored, or stalled past the deadline).
type Policy int

const (
	// PolicyFail is the default: the error reaches the ErrorHandler and
	// the message is dropped (panics and stalls are still contained — only
	// the message is lost, never the process).
	PolicyFail Policy = iota
	// PolicyRetry re-runs Process with capped exponential backoff, then
	// drops the message when attempts are exhausted.
	PolicyRetry
	// PolicyDrop drops the message immediately without retries.
	PolicyDrop
	// PolicyBypass forwards the input message downstream unprocessed, as
	// if the streamlet were a pass-through. Intended for transforming
	// streamlets whose output type admits the input type (compressors,
	// filters); the runtime does not append the peer ID for a bypassed
	// message, so peered reversal stays consistent.
	PolicyBypass
)

var policyNames = [...]string{"fail", "retry", "drop", "bypass"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Supervision configures the fault boundary of one streamlet instance.
type Supervision struct {
	// Policy selects the recovery action for faulted messages.
	Policy Policy
	// MaxRetries bounds PolicyRetry re-executions (default 3).
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 1ms). Backoff aborts promptly on End.
	RetryBackoff time.Duration
	// MaxBackoff caps the doubled backoff (default 50ms).
	MaxBackoff time.Duration
	// ProcessTimeout is the per-message processing deadline; zero means
	// none. When a Process call exceeds it, the supervisor abandons the
	// execution (the stalled goroutine is left to finish and exit on its
	// own) and applies the policy to the message.
	ProcessTimeout time.Duration
}

func (sv Supervision) withDefaults() Supervision {
	if sv.MaxRetries <= 0 {
		sv.MaxRetries = 3
	}
	if sv.RetryBackoff <= 0 {
		sv.RetryBackoff = time.Millisecond
	}
	if sv.MaxBackoff <= 0 {
		sv.MaxBackoff = 50 * time.Millisecond
	}
	return sv
}

// FaultKind classifies what went wrong inside a Process call.
type FaultKind int

const (
	// FaultPanic is a recovered Processor panic.
	FaultPanic FaultKind = iota
	// FaultError is a Processor error under a non-default policy.
	FaultError
	// FaultStall is a Process call abandoned past the ProcessTimeout.
	FaultStall
)

var faultKindNames = [...]string{"panic", "error", "stall"}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultRecord describes one message's fault outcome — reported once per
// faulting message, after the policy (including retries) ran its course, so
// subscribers are not flooded with per-attempt noise. Recovered records
// (a retry eventually succeeded) let observers surface transient faults
// without treating them as failures.
type FaultRecord struct {
	// Streamlet is the faulting instance id.
	Streamlet string
	// Kind is the classification of the final failing attempt.
	Kind FaultKind
	// MsgID identifies the message that faulted.
	MsgID string
	// Err is the final attempt's error (panics are wrapped).
	Err error
	// Attempts is how many Process executions were tried.
	Attempts int
	// Bypassed reports that the message was forwarded unprocessed rather
	// than dropped.
	Bypassed bool
	// Recovered reports that a retry succeeded after the recorded fault:
	// the message was processed normally and nothing was lost.
	Recovered bool
}

// ErrProcessorPanic wraps a recovered Processor panic.
var ErrProcessorPanic = errors.New("streamlet: processor panicked")

// ErrProcessStall reports a Process call abandoned past its deadline.
var ErrProcessStall = errors.New("streamlet: process exceeded deadline")

// supervision bundles the policy with the fault hook so the worker reads
// both with one atomic load.
type supervision struct {
	cfg     Supervision
	onFault func(FaultRecord)
}

// Supervise installs (or replaces) the instance's fault policy. Safe to
// call before or after Start; the next message sees the new policy.
func (s *Streamlet) Supervise(cfg Supervision) {
	old := s.sup.Load()
	sv := &supervision{cfg: cfg.withDefaults()}
	if old != nil {
		sv.onFault = old.onFault
	}
	s.sup.Store(sv)
}

// OnFault installs a hook receiving one FaultRecord per terminally faulted
// message (after retries, if any). The hook runs on the worker goroutine;
// it must not block for long and must not call back into the streamlet's
// lifecycle synchronously.
func (s *Streamlet) OnFault(f func(FaultRecord)) {
	old := s.sup.Load()
	sv := &supervision{onFault: f}
	if old != nil {
		sv.cfg = old.cfg
	} else {
		sv.cfg = Supervision{}.withDefaults()
	}
	s.sup.Store(sv)
}

// FaultStats reports per-instance fault accounting: recovered panics,
// abandoned stalls, retry executions, and messages resolved by drop or
// bypass.
type FaultStats struct {
	Panics   uint64
	Stalls   uint64
	Retries  uint64
	Dropped  uint64
	Bypassed uint64
}

// Faults returns the instance's fault counters.
func (s *Streamlet) Faults() FaultStats {
	return FaultStats{
		Panics:   s.faultPanics.Load(),
		Stalls:   s.faultStalls.Load(),
		Retries:  s.faultRetries.Load(),
		Dropped:  s.faultDropped.Load(),
		Bypassed: s.faultBypassed.Load(),
	}
}

// procRes is the outcome of one protected Process execution.
type procRes struct {
	emissions []Emission
	err       error
	kind      FaultKind // valid when err != nil
	aborted   bool      // streamlet ended while waiting; message abandoned
	bypassed  bool      // message forwarded unprocessed by PolicyBypass
}

// runProtected executes Process behind a recover so a panicking service
// entity is converted into an error instead of unwinding the gateway.
func runProtected(p Processor, in Input) (res procRes) {
	defer func() {
		if r := recover(); r != nil {
			res = procRes{
				err:  fmt.Errorf("%w: %v\n%s", ErrProcessorPanic, r, debug.Stack()),
				kind: FaultPanic,
			}
		}
	}()
	em, err := p.Process(in)
	if err != nil {
		return procRes{err: err, kind: FaultError}
	}
	return procRes{emissions: em}
}

// procExec is a reusable executor goroutine that runs Process calls on
// behalf of a worker when a deadline is configured. Each worker owns one
// exclusively through its execSlot: it is created lazily, abandoned
// (channel closed) when a call stalls, and closed when the worker exits. An
// abandoned executor finishes its in-flight call — however long that takes
// — discards the result, and exits; a permanently hung Processor costs one
// goroutine, not the gateway.
type procExec struct {
	in chan procReq
}

// execSlot is one worker goroutine's private executor handle. Parallel
// workers each carry their own slot, so a stalled Process call occupies
// only the worker that issued it; the other N-1 keep executing.
type execSlot struct {
	exec *procExec
}

// close abandons the slot's executor, if one exists.
func (sl *execSlot) close() {
	if sl.exec != nil {
		close(sl.exec.in)
		sl.exec = nil
	}
}

type procReq struct {
	input Input
	res   chan procRes // buffered (1): a late result never blocks the executor
}

func (e *procExec) loop(p Processor) {
	for req := range e.in {
		req.res <- runProtected(p, req.input)
	}
}

// invokeTimed runs one Process call with a deadline on the slot's executor.
func (s *Streamlet) invokeTimed(in Input, d time.Duration, sl *execSlot) procRes {
	if sl.exec == nil {
		sl.exec = &procExec{in: make(chan procReq)}
		go sl.exec.loop(s.proc)
	}
	req := procReq{input: in, res: make(chan procRes, 1)}
	select {
	case sl.exec.in <- req:
	case <-s.done:
		return procRes{aborted: true}
	}
	timer := acquireTimer(d)
	defer releaseTimer(timer)
	select {
	case r := <-req.res:
		return r
	case <-timer.C:
		// Stalled: abandon this executor (it drains its in-flight call and
		// exits); the worker's next message gets a fresh one.
		sl.close()
		return procRes{
			err:  fmt.Errorf("%w: %v elapsed", ErrProcessStall, d),
			kind: FaultStall,
		}
	case <-s.done:
		// Shutdown while a call is in flight: abandon the executor and the
		// message (End's documented abandonment semantics).
		sl.close()
		return procRes{aborted: true}
	}
}

// attempt runs one protected Process execution, with or without a deadline.
func (s *Streamlet) attempt(in Input, sv Supervision, sl *execSlot) procRes {
	if sv.ProcessTimeout > 0 {
		return s.invokeTimed(in, sv.ProcessTimeout, sl)
	}
	return runProtected(s.proc, in)
}

// countFault records one fault occurrence in the per-instance and
// gateway-wide counters.
func (s *Streamlet) countFault(kind FaultKind) {
	switch kind {
	case FaultPanic:
		s.faultPanics.Add(1)
		mFaultPanics.Inc()
	case FaultStall:
		s.faultStalls.Add(1)
		mFaultStalls.Inc()
	}
}

// supervised runs the policy loop for one message: attempts (with backoff
// between retries), fault accounting, and the terminal outcome. A returned
// error means the message must be dropped by the caller; bypassed outcomes
// come back as a pass-through emission with err == nil. sl is the calling
// worker's private executor slot; retries and backoff occupy only that
// worker.
func (s *Streamlet) supervised(in Input, sl *execSlot) procRes {
	sv := s.sup.Load()
	if sv == nil {
		// Unsupervised fast path: panic containment only (a Processor
		// panic must never take down the gateway, policy or not).
		res := runProtected(s.proc, in)
		if res.err != nil && res.kind == FaultPanic {
			s.countFault(FaultPanic)
			s.faultDropped.Add(1)
			mFaultDropped.Inc()
			s.dropped.Add(1)
			mDroppedTotal.Inc()
		}
		return res
	}

	cfg := sv.cfg
	attempts := 1
	if cfg.Policy == PolicyRetry {
		attempts += cfg.MaxRetries
	}
	var res procRes
	var lastKind FaultKind
	var lastErr error
	faulted := false
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.faultRetries.Add(1)
			mFaultRetries.Inc()
			if !s.backoff(cfg, i) {
				return procRes{aborted: true}
			}
		}
		res = s.attempt(in, cfg, sl)
		if res.aborted {
			return res
		}
		if res.err == nil {
			if faulted {
				// Transient fault healed by retry: report it (observers may
				// raise events) without any terminal disposition.
				s.notifyFault(sv, FaultRecord{
					Streamlet: s.id, Kind: lastKind, MsgID: in.Msg.ID,
					Err: lastErr, Attempts: i + 1, Recovered: true,
				})
			}
			return res
		}
		faulted = true
		lastKind, lastErr = res.kind, res.err
		s.countFault(res.kind)
	}

	// Terminal fault: apply the policy's disposition and report once.
	rec := FaultRecord{
		Streamlet: s.id,
		Kind:      res.kind,
		MsgID:     in.Msg.ID,
		Err:       res.err,
		Attempts:  attempts,
	}
	if cfg.Policy == PolicyBypass {
		rec.Bypassed = true
		s.faultBypassed.Add(1)
		mFaultBypassed.Inc()
		s.fail(fmt.Errorf("streamlet %s: bypassing message %s after %s: %w", s.id, in.Msg.ID, res.kind, res.err))
		s.notifyFault(sv, rec)
		return procRes{emissions: []Emission{{Msg: in.Msg}}, bypassed: true}
	}
	if cfg.Policy != PolicyFail || res.kind != FaultError {
		// Every disposition but the legacy fail-on-error counts the loss:
		// panics and stalls always drop the message, and the drop/retry
		// policies drop on exhaustion.
		s.faultDropped.Add(1)
		mFaultDropped.Inc()
		s.dropped.Add(1)
		mDroppedTotal.Inc()
	}
	s.notifyFault(sv, rec)
	return res
}

// backoff sleeps the capped exponential delay before retry attempt i,
// returning false when the streamlet ended during the wait.
func (s *Streamlet) backoff(cfg Supervision, attempt int) bool {
	d := cfg.RetryBackoff << (attempt - 1)
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	timer := acquireTimer(d)
	defer releaseTimer(timer)
	select {
	case <-timer.C:
		return true
	case <-s.done:
		return false
	}
}

func (s *Streamlet) notifyFault(sv *supervision, rec FaultRecord) {
	if sv.onFault != nil {
		sv.onFault(rec)
	}
}

// timerPool mirrors the queue package's pooled timers so deadlines and
// backoffs allocate no timer in steady state.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		// Already fired; drain a pending tick so a pooled Reset cannot
		// deliver a stale expiry.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
