package streamlet

// Fused execution mode: a maximal run of fusable streamlets (STATELESS,
// serial, single-input — see internal/stream's fuse pass for the discovery
// rules) collapses into one *fused hop*. The head streamlet's pump is
// swapped for a segment pump that fetches a batch from the head's input
// queue once, then runs every member's Process back-to-back on its own
// stack — no intermediate queue post/fetch, no msgpool Forward, no
// per-stage deep copy — and posts once at the segment exit through the
// batched emit sink. This is operator fusion in the Reo/compiled-protocol
// sense: the coordination glue between adjacent stateless transforms is
// compiled away while the modular composition (and its observability)
// stays intact:
//
//   - per-member processed/dropped/fault counters stay exact — every stage
//     still runs through its own supervised() policy loop, so panic
//     containment, retry/drop/bypass policies, stall deadlines, and fault
//     attribution are per-member, exactly as unfused;
//   - per-stage trace hops and process spans are synthesized from inside
//     the fused loop (interior hops report zero queue wait, which is the
//     truth — they never waited);
//   - conservation accounting holds: the head's inflight covers each batch
//     from fetch through the exit flush, and the source queue is AckN'd
//     only after the flush lands, so Quiesced, CanTerminate, and the
//     Figure 7-4 drains see fused traffic exactly as unfused traffic.
//
// Message-pool semantics at the seams are preserved: the head performs the
// segment's one pool.Get, the exit performs the one pool.Put+Forward (so a
// by-value pool still isolates the downstream consumer with one deep copy
// per segment instead of one per hop — sound because processors must not
// retain input bodies past Process). Interior identity changes mirror the
// unfused bookkeeping: when a stage does not re-emit its input message id,
// the head's pool entry (the only interior entry that exists) is removed,
// exactly as finish removes a non-kept input.
//
// Interior members keep their own (idle) pumps and workers parked on their
// now-quiet queues; dissolving a segment is therefore just the reverse pump
// swap after a drain, which is what makes fusion dynamically reversible
// under Insert/Remove/SetWorkers and supervisor heals.

import (
	"fmt"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

// FusedSegment is the runtime of one fused hop. It is built by the stream
// layer's fuse pass over members it verified fusable, installed on the
// (paused, drained) head via InstallPump, and dissolved via RemovePump.
// All per-item fields are owned by the single pump goroutine.
type FusedSegment struct {
	members []*Streamlet // chain order; members[0] is the head
	ports   []string     // input port of each member
	srcPort string       // the head input port whose pump the segment owns
	batch   int          // fetch batch: max over member batch sizes

	slots []*execSlot // per-member executor slot (stall deadlines)
	sink  emitSink    // exit-post buffer, reused across batches

	// Per-item pool bookkeeping (pump-goroutine-owned): the id of the head
	// pool entry for the item in flight and whether that entry still exists.
	headID   string
	headLive bool
}

// NewFusedSegment assembles a fused segment over members (chain order),
// each fed on the corresponding input port. The caller (the stream fuse
// pass) is responsible for having verified fusability; this constructor
// only checks shape.
func NewFusedSegment(members []*Streamlet, ports []string) (*FusedSegment, error) {
	if len(members) < 2 || len(members) != len(ports) {
		return nil, fmt.Errorf("streamlet: fused segment needs >= 2 members with one input port each (got %d members, %d ports)",
			len(members), len(ports))
	}
	seg := &FusedSegment{
		members: members,
		ports:   ports,
		srcPort: ports[0],
		batch:   1,
		slots:   make([]*execSlot, len(members)),
	}
	for i, m := range members {
		if m.pool != members[0].pool {
			return nil, fmt.Errorf("streamlet: fused members %s and %s use different pools", members[0].id, m.id)
		}
		if b := m.Batch(); b > seg.batch {
			seg.batch = b
		}
		seg.slots[i] = &execSlot{}
	}
	return seg, nil
}

// Members returns the member instance ids in chain order.
func (seg *FusedSegment) Members() []string {
	out := make([]string, len(seg.members))
	for i, m := range seg.members {
		out[i] = m.id
	}
	return out
}

// Head returns the head streamlet.
func (seg *FusedSegment) Head() *Streamlet { return seg.members[0] }

// InstallPump swaps the head's pump on the segment's source port for the
// fused pump. The head must be paused and the whole segment drained (the
// stream layer's Figure 7-4 fuse protocol guarantees both); the fused pump
// parks on the head's pause gate until the head is reactivated. The retired
// normal pump — parked on the same gate — wakes, observes its closed stop
// channel, and exits without fetching.
func (s *Streamlet) InstallPump(seg *FusedSegment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StatePaused {
		return fmt.Errorf("streamlet %s: fused pump install requires the paused head (state %s)", s.id, s.state)
	}
	q, ok := s.ins[seg.srcPort]
	if !ok {
		return fmt.Errorf("streamlet %s: fused pump install: input port %q unbound", s.id, seg.srcPort)
	}
	if stop, running := s.pumps[seg.srcPort]; running {
		close(stop)
		delete(s.pumps, seg.srcPort)
		s.cond.Broadcast()
	}
	stop := make(chan struct{})
	s.pumps[seg.srcPort] = stop
	s.wg.Add(1)
	go seg.pump(q, stop)
	return nil
}

// RemovePump dissolves the fused hop: the fused pump is retired and the
// head's normal pump restored on the source port. The head must again be
// paused and quiesced — the head's inflight covers the fused batch end to
// end, so head quiescence means the fused pump is parked with nothing in
// flight across the whole segment.
func (s *Streamlet) RemovePump(seg *FusedSegment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stop, running := s.pumps[seg.srcPort]; running {
		close(stop)
		delete(s.pumps, seg.srcPort)
		s.cond.Broadcast()
	}
	if q, ok := s.ins[seg.srcPort]; ok && (s.state == StateActive || s.state == StatePaused) {
		s.startPumpLocked(seg.srcPort, q)
	}
	for _, sl := range seg.slots {
		sl.close()
	}
}

// pump is the fused fetch loop: one batched fetch from the head's input
// queue, the whole segment run in-stack per item, one batched exit flush,
// then the conservation settlement. Lifecycle mirrors batchPump — the pause
// gate retracts in-progress fetches, fetched items are delivered through
// the segment even while the pump is being retired, and only head
// termination abandons them with End's documented ack accounting.
func (seg *FusedSegment) pump(q *queue.Queue, stop chan struct{}) {
	head := seg.members[0]
	tail := seg.members[len(seg.members)-1]
	defer head.wg.Done()
	buf := make([]queue.Item, seg.batch) // pump-owned; one allocation per install
	for {
		gate, live := head.fetchableGate(stop)
		if !live {
			return
		}
		n := q.FetchNGated(buf, stop, gate)
		if n == 0 {
			if stopped(stop) || q.Closed() {
				return
			}
			continue // the pause gate fired: park until reactivated
		}
		head.inflight.Add(int64(n))
		if head.State() == StateEnded {
			head.abandonTail(q, n)
			return
		}
		for i := 0; i < n; i++ {
			it := buf[i]
			seg.runOne(workItem{port: seg.srcPort, msgID: it.MsgID, src: q, wait: it.Wait, enqueuedNs: it.EnqueuedNs()})
		}
		tail.flush(&seg.sink)
		head.inflight.Add(int64(-n))
		q.AckN(n)
		if stopped(stop) {
			return
		}
	}
}

// runOne drives one fetched head item through every member. The segment's
// single pool.Get happens here; everything after runs on raw *mime.Message
// references until the exit.
func (seg *FusedSegment) runOne(it workItem) {
	head := seg.members[0]
	msg, err := head.pool.Get(it.msgID)
	if err != nil {
		head.fail(fmt.Errorf("streamlet %s: %w", head.id, err))
		return
	}
	seg.headID = it.msgID
	seg.headLive = true
	seg.runStage(0, msg, it.wait, it.enqueuedNs, it.src)
}

// retire releases the head's pool entry when the message id carrying it
// leaves the segment without being re-emitted — the fused equivalent of
// finish's non-kept pool.Remove. Interior messages minted mid-segment were
// never pooled, so retiring them is a no-op (their unfused pool entries
// would have been created and removed by the hops fusion eliminated).
func (seg *FusedSegment) retire(id string) {
	if seg.headLive && id == seg.headID {
		seg.members[0].pool.Remove(id)
		seg.headLive = false
	}
}

// runStage runs member k's supervised Process on msg and routes the
// emissions: interior emissions recurse into stage k+1 depth-first (which
// keeps the exit order identical to the queued pipeline, fan-out included),
// exit emissions go through the tail's emit path into the deferred sink.
// wait/enqueuedNs/src describe the head fetch and only shape stage 0's
// trace hop and queue span; interior stages report zero queue wait.
func (seg *FusedSegment) runStage(k int, msg *mime.Message, wait time.Duration, enqueuedNs int64, src *queue.Queue) {
	m := seg.members[k]
	port := seg.ports[k]
	if err := m.checkInputType(port, msg); err != nil {
		m.typeErrs.Add(1)
		mTypeErrorsTotal.Inc()
		m.fail(err)
		seg.retire(msg.ID)
		return
	}
	// Mirrors produce: capture what the trace needs before Process runs,
	// sample the latency histogram, and skip every clock read when nothing
	// consumes it.
	tracing := obs.TracingEnabled()
	var sctx obs.SpanContext
	if obs.SpansEnabled() {
		sctx = obs.ParseSpanContext(msg.Header(mime.HeaderSpanContext))
	}
	spans := sctx.Valid()
	var inChain, session string
	var bytesIn int
	if tracing || spans {
		inChain = msg.Header(obs.TraceHeader)
		session = msg.Session()
		bytesIn = msg.Len()
	}
	tick := m.procTick.Add(1)
	sampleHist := tick <= procSampleWarmup || tick%procSampleInterval == 0
	var procStart time.Time
	var procStartNs int64
	if tracing || sampleHist || spans {
		procStart = time.Now()
		if spans {
			procStartNs = obs.MonoNow()
		}
	}
	res := m.supervised(Input{Port: port, Msg: msg}, seg.slots[k])
	var procDur time.Duration
	if tracing || sampleHist || spans {
		procDur = time.Since(procStart)
	}
	if sampleHist {
		m.procHist.Observe(procDur.Seconds())
	}

	// Mirrors finish's dispositions. aborted: the member ended mid-call and
	// the message is abandoned (the head pool entry stays for stream-level
	// cleanup, as End documents). err: the supervisor already accounted the
	// fault; surface it and release the pool entry if this id carries it.
	if res.aborted {
		return
	}
	inID := msg.ID
	if res.err != nil {
		m.fail(fmt.Errorf("streamlet %s: process: %w", m.id, res.err))
		seg.retire(inID)
		return
	}
	if !res.bypassed {
		m.processed.Add(1)
		mProcessedTotal.Inc()
	}

	sit := workItem{port: port, msgID: inID, src: src, wait: wait, enqueuedNs: enqueuedNs}
	if tracing {
		m.trace(sit, session, res.emissions, inChain, bytesIn, procDur)
	}
	var sp *spanEmit
	if spans {
		// Interior stages get a zero-length queue span (enqueuedNs == 0 and
		// wait == 0 collapse it onto the process start) named after the head
		// source — the per-stage process span is the signal; the eliminated
		// queue time is exactly the fusion win.
		sp = m.span(sit, sctx, session, res.emissions, bytesIn, procStartNs, procDur)
	}

	peerID := ""
	if p, ok := Base(m.proc).(Peered); ok && !res.bypassed {
		peerID = p.PeerID()
	}

	last := k == len(seg.members)-1
	kept := false
	for i := range res.emissions {
		em := res.emissions[i]
		if em.Msg == nil {
			continue
		}
		if em.Msg.ID == inID {
			kept = true
		}
		if last {
			// Segment exit: the one pool Put+Forward, deferred post via the
			// sink, peer chain and supersede handling — all inside emitTo,
			// identical to the unfused tail hop.
			if m.emitTo(em, peerID, sp, &seg.sink) {
				// By-value pool: a deep copy travels on; the original entry
				// is superseded and its body recycled, as finish does.
				if em.Msg.ID == seg.headID {
					seg.headLive = false
				}
				if c := m.pool.Take(em.Msg.ID); c != nil {
					c.Recycle()
				}
			} else if em.Msg.ID == seg.headID {
				// Forwarded in place: ownership of the head entry moved
				// downstream with the post.
				seg.headLive = false
			}
		} else {
			if peerID != "" {
				em.Msg.PushPeer(peerID)
			}
			seg.runStage(k+1, em.Msg, 0, 0, src)
		}
	}
	if !kept {
		// Identity change or terminal stage: the input id leaves the segment
		// unre-emitted. (m.span already observed the terminal SLO latency
		// when there were no emissions at all.)
		seg.retire(inID)
	}
}
