package streamlet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/queue"
)

func textMsg(body string) *mime.Message {
	return mime.NewMessage(mime.MustParse("text/plain"), []byte(body))
}

// passthrough forwards every message unchanged to the default output.
var passthrough = ProcessorFunc(func(in Input) ([]Emission, error) {
	return []Emission{{Msg: in.Msg}}, nil
})

// upper transforms the body to upper case in place.
var upper = ProcessorFunc(func(in Input) ([]Emission, error) {
	in.Msg.SetBody([]byte(strings.ToUpper(string(in.Msg.Body()))))
	return []Emission{{Msg: in.Msg}}, nil
})

func newRig(proc Processor) (*msgpool.Pool, *Streamlet, *queue.Queue, *queue.Queue) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("s1", nil, proc, pool)
	in := queue.New("in", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	return pool, s, in, out
}

func post(t *testing.T, pool *msgpool.Pool, q *queue.Queue, m *mime.Message) {
	t.Helper()
	pool.Put(m)
	if err := q.Post(m.ID, m.Len(), nil); err != nil {
		t.Fatal(err)
	}
}

func fetchMsg(t *testing.T, pool *msgpool.Pool, q *queue.Queue, timeout time.Duration) *mime.Message {
	t.Helper()
	stop := make(chan struct{})
	timer := time.AfterFunc(timeout, func() { close(stop) })
	defer timer.Stop()
	it, ok := q.Fetch(stop)
	if !ok {
		t.Fatal("fetch timed out")
	}
	m, err := pool.Get(it.MsgID)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProcessPipeline(t *testing.T) {
	pool, s, in, out := newRig(upper)
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("hello"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "HELLO" {
		t.Errorf("body = %q", got.Body())
	}
	if s.Processed() != 1 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestMultipleMessagesKeepOrder(t *testing.T) {
	pool, s, in, out := newRig(passthrough)
	s.Start()
	defer s.End()
	for i := 0; i < 20; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m-%02d", i)))
	}
	for i := 0; i < 20; i++ {
		got := fetchMsg(t, pool, out, 2*time.Second)
		if want := fmt.Sprintf("m-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
}

func TestPortRouting(t *testing.T) {
	// A switch-like processor: route by first body byte.
	sw := ProcessorFunc(func(in Input) ([]Emission, error) {
		if in.Msg.Body()[0] == 'a' {
			return []Emission{{Port: "poA", Msg: in.Msg}}, nil
		}
		return []Emission{{Port: "poB", Msg: in.Msg}}, nil
	})
	pool := msgpool.New(msgpool.ByReference)
	s := New("switch", nil, sw, pool)
	in := queue.New("in", queue.Options{})
	outA := queue.New("outA", queue.Options{})
	outB := queue.New("outB", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("poA", outA)
	s.SetOut("poB", outB)
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("apple"))
	post(t, pool, in, textMsg("banana"))
	if got := fetchMsg(t, pool, outA, 2*time.Second); string(got.Body()) != "apple" {
		t.Errorf("outA = %q", got.Body())
	}
	if got := fetchMsg(t, pool, outB, 2*time.Second); string(got.Body()) != "banana" {
		t.Errorf("outB = %q", got.Body())
	}
}

func TestAmbiguousDefaultPortFails(t *testing.T) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("amb", nil, passthrough, pool)
	var errs []error
	var mu sync.Mutex
	s.ErrorHandler = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
	in := queue.New("in", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po1", queue.New("o1", queue.Options{}))
	s.SetOut("po2", queue.New("o2", queue.Options{}))
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("x"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(errs)
		mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("ambiguous emission did not error")
}

func TestFanInTwoPorts(t *testing.T) {
	// Merge-like processor records which port each message arrived on.
	var mu sync.Mutex
	seen := map[string]string{}
	rec := ProcessorFunc(func(in Input) ([]Emission, error) {
		mu.Lock()
		seen[string(in.Msg.Body())] = in.Port
		mu.Unlock()
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool := msgpool.New(msgpool.ByReference)
	s := New("merge", nil, rec, pool)
	in1 := queue.New("in1", queue.Options{})
	in2 := queue.New("in2", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi1", in1)
	s.SetIn("pi2", in2)
	s.SetOut("po", out)
	s.Start()
	defer s.End()

	post(t, pool, in1, textMsg("one"))
	post(t, pool, in2, textMsg("two"))
	fetchMsg(t, pool, out, 2*time.Second)
	fetchMsg(t, pool, out, 2*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if seen["one"] != "pi1" || seen["two"] != "pi2" {
		t.Errorf("seen = %v", seen)
	}
}

func TestPauseActivate(t *testing.T) {
	pool, s, in, out := newRig(passthrough)
	s.Start()
	defer s.End()
	if s.State() != StateActive {
		t.Fatalf("state = %v", s.State())
	}
	s.Pause()
	if s.State() != StatePaused {
		t.Fatalf("state = %v", s.State())
	}
	post(t, pool, in, textMsg("held"))
	time.Sleep(20 * time.Millisecond)
	if out.Len() != 0 {
		t.Error("paused streamlet emitted")
	}
	s.Activate()
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "held" {
		t.Errorf("after resume: %q", got.Body())
	}
}

func TestConsumedInputRemovedFromPool(t *testing.T) {
	// A filtering processor that emits nothing must not leak pool entries.
	drop := ProcessorFunc(func(in Input) ([]Emission, error) { return nil, nil })
	pool, s, in, _ := newRig(drop)
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("gone"))
	deadline := time.Now().Add(2 * time.Second)
	for pool.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pool.Len() != 0 {
		t.Errorf("pool leaked %d messages", pool.Len())
	}
}

func TestTransformToNewMessageCleansOld(t *testing.T) {
	replace := ProcessorFunc(func(in Input) ([]Emission, error) {
		return []Emission{{Msg: textMsg("fresh")}}, nil
	})
	pool, s, in, out := newRig(replace)
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("stale"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "fresh" {
		t.Errorf("got %q", got.Body())
	}
	deadline := time.Now().Add(time.Second)
	for pool.Len() > 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pool.Len() != 1 {
		t.Errorf("pool holds %d messages, want 1 (the fresh one)", pool.Len())
	}
}

func TestProcessorErrorDropsMessage(t *testing.T) {
	boom := ProcessorFunc(func(in Input) ([]Emission, error) {
		return nil, errors.New("boom")
	})
	pool, s, in, out := newRig(boom)
	var gotErr error
	var mu sync.Mutex
	s.ErrorHandler = func(err error) { mu.Lock(); gotErr = err; mu.Unlock() }
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("doomed"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		e := gotErr
		mu.Unlock()
		if e != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "boom") {
		t.Errorf("error = %v", gotErr)
	}
	if out.Len() != 0 {
		t.Error("errored message emitted")
	}
	if pool.Len() != 0 {
		t.Error("errored message leaked in pool")
	}
}

type peeredCompressor struct{}

func (peeredCompressor) Process(in Input) ([]Emission, error) {
	return []Emission{{Msg: in.Msg}}, nil
}
func (peeredCompressor) PeerID() string { return "decompress" }

func TestPeerHeaderAppended(t *testing.T) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("comp", nil, peeredCompressor{}, pool)
	in := queue.New("in", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("data"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	peers := got.Peers()
	if len(peers) != 1 || peers[0] != "decompress" {
		t.Errorf("peers = %v", peers)
	}
}

func TestCanTerminate(t *testing.T) {
	slow := ProcessorFunc(func(in Input) ([]Emission, error) {
		time.Sleep(50 * time.Millisecond)
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newRig(slow)
	s.Start()
	defer s.End()
	if !s.CanTerminate() {
		t.Error("idle streamlet cannot terminate")
	}
	post(t, pool, in, textMsg("busy"))
	time.Sleep(10 * time.Millisecond)
	if s.CanTerminate() {
		t.Error("busy streamlet can terminate")
	}
	fetchMsg(t, pool, out, 2*time.Second)
	deadline := time.Now().Add(time.Second)
	for !s.CanTerminate() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !s.CanTerminate() {
		t.Error("drained streamlet cannot terminate")
	}
}

func TestEndDetachesQueues(t *testing.T) {
	_, s, in, out := newRig(passthrough)
	s.Start()
	if p, c := in.Counts(); c != 1 || p != 0 {
		t.Fatalf("in counts = %d,%d", p, c)
	}
	s.End()
	if _, c := in.Counts(); c != 0 {
		t.Error("consumer count not released")
	}
	if p, _ := out.Counts(); p != 0 {
		t.Error("producer count not released")
	}
	if s.State() != StateEnded {
		t.Errorf("state = %v", s.State())
	}
	s.End() // idempotent
}

func TestRebindInputPort(t *testing.T) {
	pool, s, in, out := newRig(passthrough)
	s.Start()
	defer s.End()
	post(t, pool, in, textMsg("via-old"))
	fetchMsg(t, pool, out, 2*time.Second)

	in2 := queue.New("in2", queue.Options{})
	s.SetIn("pi", in2)
	if _, c := in.Counts(); c != 0 {
		t.Error("old queue still has consumer")
	}
	post(t, pool, in2, textMsg("via-new"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "via-new" {
		t.Errorf("got %q", got.Body())
	}
}

func TestByValuePoolMode(t *testing.T) {
	pool := msgpool.New(msgpool.ByValue)
	s := New("s", nil, passthrough, pool)
	in := queue.New("in", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	s.Start()
	defer s.End()
	m := textMsg("copy")
	post(t, pool, in, m)
	got := fetchMsg(t, pool, out, 2*time.Second)
	if got.ID == m.ID {
		t.Error("by-value did not copy")
	}
	if string(got.Body()) != "copy" {
		t.Errorf("body = %q", got.Body())
	}
}

func TestStateString(t *testing.T) {
	if StateCreated.String() != "created" || StateEnded.String() != "ended" {
		t.Error("state strings")
	}
}

func TestEndBeforeStart(t *testing.T) {
	_, s, in, _ := newRig(passthrough)
	_ = in
	// Never started: End must not hang waiting for goroutines.
	done := make(chan struct{})
	go func() { s.End(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("End before Start hung")
	}
	if s.State() != StateEnded {
		t.Errorf("state = %v", s.State())
	}
	s.Start() // no-op after End
	if s.State() != StateEnded {
		t.Error("Start resurrected an ended streamlet")
	}
}

func TestPauseBeforeStartIgnored(t *testing.T) {
	_, s, _, _ := newRig(passthrough)
	s.Pause() // created, not active: no state change
	if s.State() != StateCreated {
		t.Errorf("state = %v", s.State())
	}
	s.Activate()
	if s.State() != StateCreated {
		t.Errorf("state = %v", s.State())
	}
	s.End()
}

func TestByValuePoolDoesNotLeakIntermediates(t *testing.T) {
	pool := msgpool.New(msgpool.ByValue)
	s := New("s", nil, passthrough, pool)
	in := queue.New("in", queue.Options{CapacityBytes: 1 << 20})
	out := queue.New("out", queue.Options{CapacityBytes: 1 << 20})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	s.Start()
	defer s.End()
	for i := 0; i < 50; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m%d", i)))
		got := fetchMsg(t, pool, out, 2*time.Second)
		pool.Remove(got.ID) // final delivery
	}
	deadline := time.Now().Add(time.Second)
	for pool.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pool.Len() != 0 {
		t.Errorf("by-value pool leaked %d entries", pool.Len())
	}
}
