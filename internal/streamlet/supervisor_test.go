package streamlet

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicEvery returns a processor that panics on calls where shouldPanic
// reports true and forwards otherwise.
func panicOn(shouldPanic func(call uint64) bool) Processor {
	var calls atomic.Uint64
	return ProcessorFunc(func(in Input) ([]Emission, error) {
		if shouldPanic(calls.Add(1)) {
			panic("boom")
		}
		return []Emission{{Msg: in.Msg}}, nil
	})
}

// TestPanicContainedWithoutSupervision: a panicking Processor on a plain,
// unsupervised streamlet must never unwind the worker — the message is
// dropped and accounted, the error reaches the handler, and the next
// message processes normally.
func TestPanicContainedWithoutSupervision(t *testing.T) {
	proc := panicOn(func(call uint64) bool { return call == 1 })
	pool, s, in, out := newRig(proc)

	var mu sync.Mutex
	var errs []error
	s.ErrorHandler = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("victim"))
	post(t, pool, in, textMsg("survivor"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "survivor" {
		t.Errorf("delivered %q, want the post-panic message", got.Body())
	}
	if s.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", s.Dropped())
	}
	if f := s.Faults(); f.Panics != 1 || f.Dropped != 1 {
		t.Errorf("Faults() = %+v, want 1 panic, 1 dropped", f)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 || !errors.Is(errs[0], ErrProcessorPanic) {
		t.Errorf("errors = %v, want one ErrProcessorPanic", errs)
	}
	if len(errs) == 1 && !strings.Contains(errs[0].Error(), "boom") {
		t.Errorf("panic value missing from error: %v", errs[0])
	}
}

// TestRetryPolicyRecovers: transient faults (two panics, then success) are
// retried and the message comes through; a recovered FaultRecord is
// reported.
func TestRetryPolicyRecovers(t *testing.T) {
	proc := panicOn(func(call uint64) bool { return call <= 2 })
	pool, s, in, out := newRig(proc)
	s.Supervise(Supervision{Policy: PolicyRetry, MaxRetries: 3, RetryBackoff: 100 * time.Microsecond})

	var mu sync.Mutex
	var recs []FaultRecord
	s.OnFault(func(r FaultRecord) { mu.Lock(); recs = append(recs, r); mu.Unlock() })
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("persistent"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "persistent" {
		t.Errorf("delivered %q", got.Body())
	}
	if f := s.Faults(); f.Panics != 2 || f.Retries != 2 || f.Dropped != 0 {
		t.Errorf("Faults() = %+v, want 2 panics, 2 retries, 0 dropped", f)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 1 || !recs[0].Recovered || recs[0].Attempts != 3 {
		t.Errorf("records = %+v, want one recovered record with 3 attempts", recs)
	}
}

// TestRetryPolicyExhaustedDrops: a persistent fault exhausts the retries
// and the message is dropped with a terminal record.
func TestRetryPolicyExhaustedDrops(t *testing.T) {
	proc := panicOn(func(uint64) bool { return true })
	pool, s, in, out := newRig(proc)
	s.ErrorHandler = func(error) {}
	s.Supervise(Supervision{Policy: PolicyRetry, MaxRetries: 2, RetryBackoff: 100 * time.Microsecond})

	var rec atomic.Pointer[FaultRecord]
	s.OnFault(func(r FaultRecord) {
		if !r.Recovered {
			rec.Store(&r)
		}
	})
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("doomed"))
	deadline := time.Now().Add(2 * time.Second)
	for s.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", s.Dropped())
	}
	r := rec.Load()
	if r == nil || r.Attempts != 3 || r.Kind != FaultPanic {
		t.Errorf("terminal record = %+v, want 3 attempts of kind panic", r)
	}
	if it, ok := out.TryFetch(); ok {
		t.Errorf("unexpected emission %s after exhausted retries", it.MsgID)
	}
}

// TestDropPolicy: errors under PolicyDrop drop the message immediately and
// keep the pipeline flowing.
func TestDropPolicy(t *testing.T) {
	bad := errors.New("bad message")
	var calls atomic.Uint64
	proc := ProcessorFunc(func(in Input) ([]Emission, error) {
		if calls.Add(1) == 1 {
			return nil, bad
		}
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newRig(proc)
	var handled atomic.Uint64
	s.ErrorHandler = func(error) { handled.Add(1) }
	s.Supervise(Supervision{Policy: PolicyDrop})
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("bad"))
	post(t, pool, in, textMsg("good"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "good" {
		t.Errorf("delivered %q", got.Body())
	}
	if f := s.Faults(); f.Dropped != 1 {
		t.Errorf("Faults() = %+v, want 1 dropped", f)
	}
	if handled.Load() == 0 {
		t.Error("ErrorHandler not invoked for the dropped message")
	}
}

// TestBypassPolicy: a faulting processor under PolicyBypass forwards the
// message unprocessed instead of dropping it.
func TestBypassPolicy(t *testing.T) {
	proc := ProcessorFunc(func(in Input) ([]Emission, error) {
		return nil, errors.New("cannot transform")
	})
	pool, s, in, out := newRig(proc)
	s.ErrorHandler = func(error) {}
	s.Supervise(Supervision{Policy: PolicyBypass})
	s.Start()
	defer s.End()

	post(t, pool, in, textMsg("payload"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "payload" {
		t.Errorf("bypassed body = %q, want original", got.Body())
	}
	if f := s.Faults(); f.Bypassed != 1 || f.Dropped != 0 {
		t.Errorf("Faults() = %+v, want 1 bypassed, 0 dropped", f)
	}
	// Bypassed messages are not counted as processed: nothing ran.
	if s.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", s.Processed())
	}
}

// TestStallDeadline: a Process call that sleeps past ProcessTimeout is
// abandoned, the fault is recorded, and — critically — the abandoned
// executor goroutine exits once the stalled call returns.
func TestStallDeadline(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Uint64
	proc := ProcessorFunc(func(in Input) ([]Emission, error) {
		if calls.Add(1) == 1 {
			<-release
		}
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newRig(proc)
	s.ErrorHandler = func(error) {}
	s.Supervise(Supervision{Policy: PolicyDrop, ProcessTimeout: 5 * time.Millisecond})
	s.Start()
	defer s.End()

	before := runtime.NumGoroutine()
	post(t, pool, in, textMsg("stuck"))
	post(t, pool, in, textMsg("after"))
	got := fetchMsg(t, pool, out, 2*time.Second)
	if string(got.Body()) != "after" {
		t.Errorf("delivered %q, want the post-stall message", got.Body())
	}
	if f := s.Faults(); f.Stalls != 1 || f.Dropped != 1 {
		t.Errorf("Faults() = %+v, want 1 stall, 1 dropped", f)
	}

	// Release the stalled call; its abandoned executor must drain and exit.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines = %d, want <= %d (abandoned executor leaked)", n, before+1)
	}
}

// TestSuperviseSwapKeepsHook: installing a policy after OnFault (or vice
// versa) preserves the other half.
func TestSuperviseSwapKeepsHook(t *testing.T) {
	_, s, _, _ := newRig(passthrough)
	var fired atomic.Uint64
	s.OnFault(func(FaultRecord) { fired.Add(1) })
	s.Supervise(Supervision{Policy: PolicyDrop})
	sv := s.sup.Load()
	if sv.onFault == nil {
		t.Fatal("Supervise dropped the OnFault hook")
	}
	if sv.cfg.Policy != PolicyDrop {
		t.Fatalf("policy = %v", sv.cfg.Policy)
	}
	s.OnFault(func(FaultRecord) { fired.Add(1) })
	if sv = s.sup.Load(); sv.cfg.Policy != PolicyDrop {
		t.Fatal("OnFault dropped the Supervise config")
	}
}
