package streamlet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/msgpool"
	"mobigate/internal/queue"
)

// newBatchRig is newRig with a handoff batch size (and optional fan-out).
func newBatchRig(t *testing.T, proc Processor, batch, workers int) (*msgpool.Pool, *Streamlet, *queue.Queue, *queue.Queue) {
	t.Helper()
	pool := msgpool.New(msgpool.ByReference)
	s := New("b1", nil, proc, pool)
	if err := s.SetBatch(batch); err != nil {
		t.Fatal(err)
	}
	if workers > 1 {
		if err := s.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
	}
	in := queue.New("in", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	return pool, s, in, out
}

// TestSetBatchRules pins the configuration contract.
func TestSetBatchRules(t *testing.T) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("cfg", nil, passthrough, pool)
	if err := s.SetBatch(0); err != nil {
		t.Fatal(err)
	}
	if s.Batch() != 1 {
		t.Errorf("SetBatch(0) -> %d, want clamp to 1", s.Batch())
	}
	if err := s.SetBatch(8); err != nil {
		t.Fatal(err)
	}
	s.SetIn("pi", queue.New("in", queue.Options{}))
	s.Start()
	defer s.End()
	if err := s.SetBatch(4); err == nil {
		t.Error("SetBatch after Start succeeded")
	}
}

// TestBatchDeclApplied checks the MCL path: a declaration carrying
// `batch = N` configures the streamlet without any SetBatch call.
func TestBatchDeclApplied(t *testing.T) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("decl", &mcl.StreamletDecl{Name: "x", Batch: 16}, passthrough, pool)
	if s.Batch() != 16 {
		t.Errorf("Batch = %d, want 16 from declaration", s.Batch())
	}
}

// TestBatchKeepsFIFO is the core property of the batched serial pump: with
// batch = 8 every message still arrives transformed and in exact send
// order, and nothing is lost or duplicated.
func TestBatchKeepsFIFO(t *testing.T) {
	pool, s, in, out := newBatchRig(t, upper, 8, 1)
	s.Start()
	defer s.End()

	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			m := textMsg(fmt.Sprintf("m-%04d", i))
			pool.Put(m)
			if err := in.Post(m.ID, m.Len(), nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("M-%04d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
	if s.Processed() != n {
		t.Errorf("processed = %d, want %d", s.Processed(), n)
	}
}

// TestBatchPauseDrainsInFlight mirrors the Figure 7-4 suspend protocol over
// a batched streamlet: after Pause, fetched batches drain to the output,
// the streamlet quiesces, the rest stays parked on the input queue, and no
// message is reordered across the pause.
func TestBatchPauseDrainsInFlight(t *testing.T) {
	pool, s, in, out := newBatchRig(t, passthrough, 8, 1)
	s.Start()
	defer s.End()

	const n = 40
	for i := 0; i < n; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m-%02d", i)))
	}
	s.Pause()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("streamlet did not quiesce after Pause")
		}
		time.Sleep(time.Millisecond)
	}
	posted, _, _ := out.Stats()
	drained := int(posted)
	if queued := in.Len(); queued+drained != n {
		t.Fatalf("queued %d + drained %d != %d posted", queued, drained, n)
	}
	s.Activate()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q (reordered across pause)", i, got.Body(), want)
		}
	}
	if !s.CanTerminate() {
		t.Error("CanTerminate = false after full drain")
	}
}

// TestBatchComposesWithWorkers drives batch = 8 with workers = 4 and
// per-message jitter: the batched drain feeds the admission gate item by
// item, so the resequencer's FIFO guarantee must survive unchanged.
func TestBatchComposesWithWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	jitters := make([]time.Duration, 128)
	for i := range jitters {
		jitters[i] = time.Duration(rng.Intn(200)) * time.Microsecond
	}
	jittered := ProcessorFunc(func(in Input) ([]Emission, error) {
		time.Sleep(jitters[in.Msg.Len()%len(jitters)])
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newBatchRig(t, jittered, 8, 4)
	s.Start()
	defer s.End()

	const n = 150
	go func() {
		for i := 0; i < n; i++ {
			m := textMsg(fmt.Sprintf("m-%04d", i))
			pool.Put(m)
			if err := in.Post(m.ID, m.Len(), nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%04d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
}

// TestBatchEndMidStream terminates a batched streamlet while traffic is in
// flight and asserts the conservation accounting settles: whatever was
// fetched is either delivered or abandoned-with-ack, so the input queue's
// outstanding count returns to zero and End does not hang.
func TestBatchEndMidStream(t *testing.T) {
	slow := ProcessorFunc(func(in Input) ([]Emission, error) {
		time.Sleep(200 * time.Microsecond)
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newBatchRig(t, slow, 8, 1)
	s.Start()

	const n = 64
	for i := 0; i < n; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m-%02d", i)))
	}
	time.Sleep(2 * time.Millisecond) // let a few batches through
	done := make(chan struct{})
	go func() { s.End(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("End hung on a batched streamlet")
	}
	// Everything fetched from the input was acked — delivered downstream or
	// abandoned with End's documented semantics — so fetched − acked is 0.
	if got := in.InFlight(); got != 0 {
		t.Errorf("input InFlight = %d after End", got)
	}
	_ = out
}
