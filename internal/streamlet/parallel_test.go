package streamlet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/msgpool"
	"mobigate/internal/queue"
)

// newParRig is newRig with a fan-out width.
func newParRig(t *testing.T, proc Processor, workers int) (*msgpool.Pool, *Streamlet, *queue.Queue, *queue.Queue) {
	t.Helper()
	pool := msgpool.New(msgpool.ByReference)
	s := New("par", nil, proc, pool)
	if err := s.SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	in := queue.New("in", queue.Options{})
	out := queue.New("out", queue.Options{})
	s.SetIn("pi", in)
	s.SetOut("po", out)
	return pool, s, in, out
}

// TestParallelKeepsFIFO is the core ordering property: four workers with
// per-message jitter must still deliver in exact send order.
func TestParallelKeepsFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	jitters := make([]time.Duration, 200)
	for i := range jitters {
		jitters[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	var idx atomic.Int64
	jittered := ProcessorFunc(func(in Input) ([]Emission, error) {
		time.Sleep(jitters[idx.Add(1)%int64(len(jitters))])
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newParRig(t, jittered, 4)
	s.Start()
	defer s.End()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			m := textMsg(fmt.Sprintf("m-%04d", i))
			pool.Put(m)
			if err := in.Post(m.ID, m.Len(), nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%04d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q (reordered)", i, got.Body(), want)
		}
	}
	if s.Processed() != n {
		t.Errorf("processed = %d, want %d", s.Processed(), n)
	}
}

// TestParallelTransformInPlace checks that a mutating processor composes
// with fan-out: bodies are transformed and order holds.
func TestParallelTransformInPlace(t *testing.T) {
	pool, s, in, out := newParRig(t, upper, 3)
	s.Start()
	defer s.End()
	const n = 50
	for i := 0; i < n; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("msg-%02d", i)))
	}
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("MSG-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
}

// TestParallelResequencerBounded stalls the head message and checks that
// the admission gate keeps the parked-completion high-water mark within
// workers-1 instead of letting the other workers run away.
func TestParallelResequencerBounded(t *testing.T) {
	const workers = 4
	release := make(chan struct{})
	var first atomic.Bool
	headStall := ProcessorFunc(func(in Input) ([]Emission, error) {
		if first.CompareAndSwap(false, true) {
			<-release
		}
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newParRig(t, headStall, workers)
	s.Start()
	defer s.End()

	const n = 64
	go func() {
		for i := 0; i < n; i++ {
			m := textMsg(fmt.Sprintf("m-%02d", i))
			pool.Put(m)
			if err := in.Post(m.ID, m.Len(), nil); err != nil {
				return
			}
		}
	}()
	// Give the free workers time to chew as far ahead as the gate allows.
	time.Sleep(50 * time.Millisecond)
	close(release)
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
	if peak := s.ResequencerPeak(); peak > workers-1 {
		t.Errorf("resequencer peak = %d, want <= %d", peak, workers-1)
	}
}

// TestParallelPauseDrainsInFlight mirrors the Figure 7-4 suspend protocol
// over a parallel streamlet: after Pause, everything already fetched (up to
// `workers` items thanks to the admission gate) drains to the output and
// the streamlet quiesces; the rest stays parked on the input queue.
func TestParallelPauseDrainsInFlight(t *testing.T) {
	pool, s, in, out := newParRig(t, passthrough, 4)
	s.Start()
	defer s.End()

	const n = 40
	for i := 0; i < n; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m-%02d", i)))
	}
	s.Pause()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("streamlet did not quiesce after Pause")
		}
		time.Sleep(time.Millisecond)
	}
	posted, _, _ := out.Stats()
	drained := int(posted)
	if queued := in.Len(); queued+drained != n {
		t.Fatalf("queued %d + drained %d != %d posted", queued, drained, n)
	}
	s.Activate()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q (reordered across pause)", i, got.Body(), want)
		}
	}
	if !s.CanTerminate() {
		t.Error("CanTerminate = false after full drain")
	}
}

// TestParallelPanicContainment seeds a deterministic panic into a stream of
// messages processed by 4 workers and checks, per supervision policy, that
// the victim's disposition is honored while every other message arrives
// intact and in order — a panicking worker must never reorder or lose its
// neighbors. Run under -race this also exercises the produce/finish split.
func TestParallelPanicContainment(t *testing.T) {
	const n = 60
	const victim = "m-29"
	cases := []struct {
		name      string
		policy    Policy
		delivered int  // messages expected at the outlet
		bypassed  bool // victim arrives unprocessed
	}{
		{"drop", PolicyDrop, n - 1, false},
		{"retry-exhausted", PolicyRetry, n - 1, false},
		{"bypass", PolicyBypass, n, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			boom := ProcessorFunc(func(in Input) ([]Emission, error) {
				if string(in.Msg.Body()) == victim {
					panic("seeded fault")
				}
				in.Msg.SetBody([]byte(strings.ToUpper(string(in.Msg.Body()))))
				return []Emission{{Msg: in.Msg}}, nil
			})
			pool, s, in, out := newParRig(t, boom, 4)
			s.Supervise(Supervision{Policy: c.policy, MaxRetries: 2, RetryBackoff: time.Microsecond})
			var recs []FaultRecord
			var mu sync.Mutex
			s.OnFault(func(r FaultRecord) { mu.Lock(); recs = append(recs, r); mu.Unlock() })
			s.Start()
			defer s.End()

			go func() {
				for i := 0; i < n; i++ {
					m := textMsg(fmt.Sprintf("m-%02d", i))
					pool.Put(m)
					if err := in.Post(m.ID, m.Len(), nil); err != nil {
						return
					}
				}
			}()
			last := -1
			for i := 0; i < c.delivered; i++ {
				got := fetchMsg(t, pool, out, 5*time.Second)
				body := string(got.Body())
				var seq int
				if body == victim {
					if !c.bypassed {
						t.Fatalf("victim %q delivered under policy %s", victim, c.policy)
					}
					fmt.Sscanf(body, "m-%d", &seq)
				} else {
					if _, err := fmt.Sscanf(body, "M-%d", &seq); err != nil {
						t.Fatalf("message %d body %q: neither processed nor bypassed victim", i, body)
					}
				}
				if seq <= last {
					t.Fatalf("message %d: seq %d after %d (reordered)", i, seq, last)
				}
				last = seq
			}
			if _, ok := out.TryFetch(); ok {
				t.Fatal("unexpected extra message at outlet")
			}
			mu.Lock()
			defer mu.Unlock()
			if len(recs) != 1 {
				t.Fatalf("fault records = %d, want 1", len(recs))
			}
			if recs[0].Kind != FaultPanic || recs[0].Bypassed != c.bypassed {
				t.Errorf("record = %+v", recs[0])
			}
			st := s.Faults()
			if st.Panics == 0 {
				t.Error("panic counter = 0")
			}
			if c.bypassed && st.Bypassed != 1 {
				t.Errorf("bypassed = %d, want 1", st.Bypassed)
			}
			if !c.bypassed && st.Dropped != 1 {
				t.Errorf("dropped = %d, want 1", st.Dropped)
			}
		})
	}
}

// TestParallelRetryRecovers checks a transient panic healed by retry under
// fan-out: the victim is delivered processed, in order, with a Recovered
// fault record.
func TestParallelRetryRecovers(t *testing.T) {
	const n = 40
	const victim = "m-13"
	var failures atomic.Int64
	flaky := ProcessorFunc(func(in Input) ([]Emission, error) {
		if string(in.Msg.Body()) == victim && failures.Add(1) <= 2 {
			panic("transient")
		}
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, out := newParRig(t, flaky, 4)
	s.Supervise(Supervision{Policy: PolicyRetry, MaxRetries: 3, RetryBackoff: time.Microsecond})
	var recovered atomic.Int64
	s.OnFault(func(r FaultRecord) {
		if r.Recovered {
			recovered.Add(1)
		}
	})
	s.Start()
	defer s.End()

	go func() {
		for i := 0; i < n; i++ {
			m := textMsg(fmt.Sprintf("m-%02d", i))
			pool.Put(m)
			if err := in.Post(m.ID, m.Len(), nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got := fetchMsg(t, pool, out, 5*time.Second)
		if want := fmt.Sprintf("m-%02d", i); string(got.Body()) != want {
			t.Fatalf("message %d = %q, want %q", i, got.Body(), want)
		}
	}
	if recovered.Load() != 1 {
		t.Errorf("recovered records = %d, want 1", recovered.Load())
	}
}

// TestSetWorkersRules pins the configuration contract.
func TestSetWorkersRules(t *testing.T) {
	pool := msgpool.New(msgpool.ByReference)
	s := New("w", nil, passthrough, pool)
	if err := s.SetWorkers(0); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 1 {
		t.Errorf("workers after SetWorkers(0) = %d, want 1", s.Workers())
	}
	if err := s.SetWorkers(8); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 8 {
		t.Errorf("workers = %d, want 8", s.Workers())
	}
	s.Start()
	defer s.End()
	if err := s.SetWorkers(2); err == nil {
		t.Error("SetWorkers after Start succeeded, want error")
	}
}

// TestParallelEndAbandons checks that End with parallel work in flight
// terminates promptly (the documented abandonment semantics) and leaves no
// goroutines blocked — the deferred wg.Wait inside End is the assertion.
func TestParallelEndAbandons(t *testing.T) {
	slow := ProcessorFunc(func(in Input) ([]Emission, error) {
		time.Sleep(2 * time.Millisecond)
		return []Emission{{Msg: in.Msg}}, nil
	})
	pool, s, in, _ := newParRig(t, slow, 4)
	s.Start()
	for i := 0; i < 32; i++ {
		post(t, pool, in, textMsg(fmt.Sprintf("m-%02d", i)))
	}
	done := make(chan struct{})
	go func() { s.End(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("End did not return with parallel work in flight")
	}
}
