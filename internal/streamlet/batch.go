package streamlet

// Batched handoff mode: a streamlet whose declaration carries `batch = N`
// (or that SetBatch configured) moves messages through the coordination
// plane in batches instead of one at a time, in both directions:
//
//   - the pump drains up to N items from its input queue in ONE FetchN
//     (one queue lock, one producer broadcast) and — in serial mode —
//     hands the whole []workItem slice to the worker in ONE channel
//     operation;
//   - the worker processes the batch in fetch order and defers every
//     emission's queue post into an emitSink, which the batch flush posts
//     downstream with ONE PostN per run of same-queue emissions (one lock,
//     one consumer broadcast, one batched flight entry).
//
// Everything else is unchanged: produce/finish run per message, so
// supervision, the transcode cache, tracing, and spans compose exactly as
// in the single-item path; FIFO order is preserved end to end (drain and
// flush both keep fetch order); and the conservation accounting holds —
// inflight covers the batch from fetch to flush, and the source queue is
// acked (AckN) only after the flush lands, so Quiesced, CanTerminate, and
// the Figure 7-4 drains see batched items exactly as they see single ones.
//
// In parallel mode (workers > 1) only the drain side batches: fetched
// items still fan out one at a time through the work channel and the
// admission-token gate, and the resequencer emits them immediately in
// sequence order. Batching the emit side there would park completed work
// behind the batch boundary and interact with the token gate's bounded
// head-of-line guarantee for no measured benefit.

import (
	"fmt"
	"sync"

	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

// workBatch is one batched pump→worker handoff. All items come from the
// same source queue (one pump per port), which is what lets the worker
// settle the batch with a single AckN.
type workBatch struct {
	items []workItem
}

// batchPool recycles handoff slices: a pump fills a batch, the worker
// drains it and puts it back, so steady state allocates nothing.
var batchPool sync.Pool

func acquireBatch() *workBatch {
	if wb, _ := batchPool.Get().(*workBatch); wb != nil {
		return wb
	}
	return &workBatch{}
}

func releaseBatch(wb *workBatch) {
	for i := range wb.items {
		wb.items[i] = workItem{} // release msgID strings
	}
	wb.items = wb.items[:0]
	batchPool.Put(wb)
}

// SetBatch fixes the handoff batch size before Start. n < 1 is treated as
// 1 (the single-item pump). Declarations with a batch attribute do not
// need this call; New already applies them.
func (s *Streamlet) SetBatch(n int) error {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateCreated {
		return fmt.Errorf("streamlet %s: batch must be set before Start (state %s)", s.id, s.state)
	}
	s.batch = n
	return nil
}

// Batch returns the configured handoff batch size (1 = single-item).
func (s *Streamlet) Batch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batch
}

// batchPump is the fetch loop for one input port in batch mode: it drains
// up to s.batch items per FetchNGated and hands them downstream — as one
// workBatch in serial mode, or item by item through the admission gate in
// parallel mode. The pause/drain semantics mirror the single-item pump:
// the gate retracts an in-progress fetch without consuming anything, and
// once items are fetched they are delivered to the worker even when the
// pump is being detached (re-queueing would reorder); only streamlet
// termination (done) abandons them, with the same ack accounting End
// documents.
func (s *Streamlet) batchPump(port string, q *queue.Queue, stop chan struct{}, par bool) {
	defer s.wg.Done()
	buf := make([]queue.Item, s.batch) // pump-owned; one allocation per pump
	for {
		gate, live := s.fetchableGate(stop)
		if !live {
			return
		}
		n := q.FetchNGated(buf, stop, gate)
		if n == 0 {
			if stopped(stop) || q.Closed() {
				return
			}
			continue // the pause gate fired: park until reactivated
		}
		s.inflight.Add(int64(n))
		if par {
			// Parallel mode: the drain was batched; delivery stays per item
			// so the token gate keeps bounding head-of-line blocking.
			for i := 0; i < n; i++ {
				it := buf[i]
				item := workItem{port: port, msgID: it.MsgID, src: q, wait: it.Wait, enqueuedNs: it.EnqueuedNs()}
				item.seq = s.seq.Add(1) - 1
				select {
				case s.tokens <- struct{}{}:
				case <-s.done:
					s.abandonTail(q, n-i)
					return
				}
				select {
				case s.work <- item:
				case <-s.done:
					s.abandonTail(q, n-i)
					return
				}
			}
			if stopped(stop) {
				return
			}
			continue
		}
		wb := acquireBatch()
		for i := 0; i < n; i++ {
			it := buf[i]
			wb.items = append(wb.items, workItem{port: port, msgID: it.MsgID, src: q, wait: it.Wait, enqueuedNs: it.EnqueuedNs()})
		}
		select {
		case s.workB <- wb:
		case <-s.done:
			s.abandonTail(q, n)
			releaseBatch(wb)
			return
		}
		if stopped(stop) {
			return
		}
	}
}

// abandonTail accounts for fetched items abandoned at shutdown, with the
// semantics End documents for the single-item pump.
func (s *Streamlet) abandonTail(q *queue.Queue, n int) {
	s.inflight.Add(int64(-n))
	q.AckN(n)
}

// runBatch processes one batched handoff on the serial worker: produce and
// finish per item in fetch order with the emissions deferred into sink,
// then one flush downstream, then the batch's conservation settlement.
// Returns false when the worker should exit (the streamlet ended and the
// batch was abandoned with End's documented semantics).
func (s *Streamlet) runBatch(wb *workBatch, slot *execSlot, sink *emitSink) bool {
	n := len(wb.items)
	if n == 0 {
		releaseBatch(wb)
		return true
	}
	src := wb.items[0].src
	if s.State() == StateEnded {
		s.abandonTail(src, n)
		releaseBatch(wb)
		return false
	}
	for i := range wb.items {
		c := s.produce(wb.items[i], slot)
		s.finish(&c, sink)
	}
	s.flush(sink)
	s.inflight.Add(int64(-n))
	src.AckN(n)
	releaseBatch(wb)
	return true
}

// sinkEntry is one deferred queue post: everything emitTo decided except
// the post itself.
type sinkEntry struct {
	q      *queue.Queue
	fid    string // forwarded id to post (fid != origID means a deep copy)
	origID string
	size   int
	sp     *spanEmit // forward-span parent (nil when spans are off)
}

// emitSink buffers one batch's deferred posts. Owned by the serial worker
// and reused across batches; both slices keep their capacity, so steady
// state allocates nothing.
type emitSink struct {
	entries []sinkEntry
	scratch []queue.Entry
}

func (k *emitSink) add(e sinkEntry) { k.entries = append(k.entries, e) }

func (k *emitSink) reset() {
	for i := range k.entries {
		k.entries[i] = sinkEntry{} // release ids and span refs
	}
	k.entries = k.entries[:0]
}

// flush posts the sink's deferred emissions downstream in order, one PostN
// per run of consecutive same-queue entries (a chain hop emits to one
// queue, so the common case is exactly one PostN). Drop disposition per
// failed entry mirrors the single-item emit path; forward spans cover the
// batched flush they rode in.
func (s *Streamlet) flush(sink *emitSink) {
	ents := sink.entries
	for i := 0; i < len(ents); {
		j := i + 1
		for j < len(ents) && ents[j].q == ents[i].q {
			j++
		}
		s.flushRun(ents[i].q, ents[i:j], &sink.scratch)
		i = j
	}
	sink.reset()
}

func (s *Streamlet) flushRun(q *queue.Queue, run []sinkEntry, scratch *[]queue.Entry) {
	es := (*scratch)[:0]
	for i := range run {
		es = append(es, queue.Entry{MsgID: run[i].fid, Size: run[i].size})
	}
	*scratch = es
	var flushStart int64
	spansOn := false
	for i := range run {
		if run[i].sp != nil {
			spansOn = true
			break
		}
	}
	if spansOn {
		flushStart = obs.MonoNow()
	}
	_, failed, err := q.PostN(es, s.done)
	if err != nil && err != queue.ErrDropped {
		s.fail(fmt.Errorf("streamlet %s: post to %s: %w", s.id, q.Name(), err))
	}
	var flushEnd int64
	if spansOn {
		flushEnd = obs.MonoNow()
	}
	fi := 0
	for idx := range run {
		e := &run[idx]
		if fi < len(failed) && failed[fi] == idx {
			// Not posted: dropped on timeout, or cut off by close/shutdown.
			// Same disposition as the single-item path — the deep copy never
			// left the pool, so its body is reclaimed; an in-place forward's
			// entry is removed. (The original, when distinct, was already
			// superseded in finish, exactly as emit documents for a failed
			// post.)
			fi++
			s.dropped.Add(1)
			mDroppedTotal.Inc()
			if e.fid != e.origID {
				if c := s.pool.Take(e.fid); c != nil {
					c.Recycle()
				}
			} else {
				s.pool.Remove(e.fid)
			}
			continue
		}
		if e.sp != nil {
			// One forward span per posted emission; all spans of a run share
			// the flush window, which is the true wall-clock cost the post
			// amortized across the batch.
			col := obs.Spans()
			col.Record(obs.Span{
				TraceID: e.sp.traceID, SpanID: col.NextID(), ParentID: e.sp.procSpanID,
				Kind: obs.SpanForward, Site: col.Site(), Name: q.Name(),
				StartNs: flushStart, DurNs: flushEnd - flushStart, Bytes: e.size,
			})
		}
	}
}
