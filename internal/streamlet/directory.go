package streamlet

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh Processor instance for a library name.
type Factory func() Processor

// Directory is the Streamlet Directory of §3.3.7: the repository where
// streamlet providers advertise their services, keyed by the library
// attribute of the streamlet declaration (e.g. "general/switch"). The
// Streamlet Manager looks libraries up here to create instances. Composite
// streamlets (library "mcl:stream") are resolved by the stream runtime,
// not by this directory.
type Directory struct {
	mu        sync.RWMutex
	factories map[string]Factory
	traits    map[string]Traits
}

// Traits are per-library execution-plane capability annotations a provider
// advertises alongside its factory. The coordination plane uses them to
// decide what it may legally do with instances of the library: fan Process
// calls out across workers, memoize results, or pool instances.
type Traits struct {
	// Parallelizable marks a library whose Process is a pure per-message
	// function of its input (no cross-message state, no order sensitivity),
	// so the runtime may run N calls concurrently behind a resequencer.
	Parallelizable bool
	// Deterministic marks a library whose output depends only on the input
	// body and its configured parameters, making results content-addressable
	// (see internal/cache).
	Deterministic bool
	// PoolPreferred marks a library whose instance construction is expensive
	// enough that §3.3.4 instance pooling pays for its own overhead; the
	// Streamlet Manager pools only these by default.
	PoolPreferred bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		factories: make(map[string]Factory),
		traits:    make(map[string]Traits),
	}
}

// Register advertises a library implementation. Re-registering a library
// replaces the previous factory (a provider shipping an update).
func (d *Directory) Register(library string, f Factory) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.factories[library] = f
}

// SetTraits records a library's capability annotations. Traits for an
// unregistered library are kept (registration order is not significant).
func (d *Directory) SetTraits(library string, t Traits) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.traits[library] = t
}

// Traits returns a library's capability annotations (the zero value when
// none were advertised — the conservative default: serial, impure,
// unpooled).
func (d *Directory) Traits(library string) Traits {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.traits[library]
}

// Lookup returns the factory for a library.
func (d *Directory) Lookup(library string) (Factory, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.factories[library]
	if !ok {
		return nil, fmt.Errorf("streamlet: library %q not found in directory", library)
	}
	return f, nil
}

// Libraries lists registered library names, sorted.
func (d *Directory) Libraries() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.factories))
	for lib := range d.factories {
		out = append(out, lib)
	}
	sort.Strings(out)
	return out
}

// ProcessorPool implements streamlet pooling (§3.3.4): stateless processors
// are never bound to a specific stream, so a small number of instances can
// be reused across requests instead of being created and destroyed per
// stream. The pool is bounded; Get falls back to the factory when empty.
type ProcessorPool struct {
	factory Factory
	free    chan Processor

	created atomic64
	reused  atomic64
}

// atomic64 is a tiny counter wrapper to keep the struct comparable fields
// grouped (sync/atomic's Uint64 is not copyable, which is what we want).
type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic64) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// NewProcessorPool creates a pool of at most size pooled instances.
func NewProcessorPool(factory Factory, size int) *ProcessorPool {
	if size <= 0 {
		size = 8
	}
	return &ProcessorPool{factory: factory, free: make(chan Processor, size)}
}

// Get returns a pooled instance or creates one.
func (p *ProcessorPool) Get() Processor {
	select {
	case proc := <-p.free:
		p.reused.inc()
		return proc
	default:
		p.created.inc()
		return p.factory()
	}
}

// Put returns an instance to the pool; surplus instances are discarded for
// the garbage collector.
func (p *ProcessorPool) Put(proc Processor) {
	if proc == nil {
		return
	}
	select {
	case p.free <- proc:
	default:
	}
}

// Stats returns how many instances were created fresh vs reused.
func (p *ProcessorPool) Stats() (created, reused uint64) {
	return p.created.get(), p.reused.get()
}
