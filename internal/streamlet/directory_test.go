package streamlet

import (
	"sync"
	"testing"
)

func TestDirectoryRegisterLookup(t *testing.T) {
	d := NewDirectory()
	d.Register("general/pass", func() Processor { return passthrough })
	f, err := d.Lookup("general/pass")
	if err != nil || f == nil {
		t.Fatalf("Lookup: %v", err)
	}
	if _, err := d.Lookup("ghost/lib"); err == nil {
		t.Error("unknown library found")
	}
	d.Register("a/z", func() Processor { return passthrough })
	libs := d.Libraries()
	if len(libs) != 2 || libs[0] != "a/z" || libs[1] != "general/pass" {
		t.Errorf("Libraries = %v", libs)
	}
	// Re-register replaces.
	called := false
	d.Register("general/pass", func() Processor { called = true; return passthrough })
	f, _ = d.Lookup("general/pass")
	f()
	if !called {
		t.Error("re-register did not replace factory")
	}
}

type countingProc struct{ n int }

func (c *countingProc) Process(in Input) ([]Emission, error) {
	c.n++
	return nil, nil
}

func TestProcessorPoolReuse(t *testing.T) {
	p := NewProcessorPool(func() Processor { return &countingProc{} }, 2)
	a := p.Get()
	created, reused := p.Stats()
	if created != 1 || reused != 0 {
		t.Errorf("stats = %d, %d", created, reused)
	}
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Error("pool did not reuse instance")
	}
	_, reused = p.Stats()
	if reused != 1 {
		t.Errorf("reused = %d", reused)
	}
}

func TestProcessorPoolBounded(t *testing.T) {
	p := NewProcessorPool(func() Processor { return &countingProc{} }, 1)
	a, b := p.Get(), p.Get()
	p.Put(a)
	p.Put(b) // discarded: pool is full
	x := p.Get()
	y := p.Get()
	if x != a {
		t.Error("first Get should reuse a")
	}
	if y == b {
		t.Error("overflow instance should have been discarded")
	}
	p.Put(nil) // no panic
}

func TestProcessorPoolDefaultSize(t *testing.T) {
	p := NewProcessorPool(func() Processor { return &countingProc{} }, 0)
	if cap(p.free) != 8 {
		t.Errorf("default size = %d", cap(p.free))
	}
}

func TestProcessorPoolConcurrent(t *testing.T) {
	p := NewProcessorPool(func() Processor { return &countingProc{} }, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				proc := p.Get()
				p.Put(proc)
			}
		}()
	}
	wg.Wait()
	created, reused := p.Stats()
	if created+reused != 800 {
		t.Errorf("created+reused = %d", created+reused)
	}
	if reused == 0 {
		t.Error("no reuse under contention")
	}
}
