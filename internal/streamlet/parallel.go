package streamlet

// Parallel execution mode: order-preserving worker fan-out. A streamlet
// whose declaration carries `workers = N` (or that SetWorkers configured)
// runs N worker goroutines instead of one. Pumps stamp every fetched item
// with a sequence number; the workers race through the parallel-safe stage
// (produce: pool fetch, type check, the supervised Process call) and hand
// their completions to a single resequencer goroutine, which buffers
// out-of-order completions and runs the serial stage (finish: counters,
// trace/span bookkeeping, downstream emission) strictly in fetch order.
// Downstream hops therefore observe exactly the per-port FIFO the serial
// worker provides, while up to N Process calls execute concurrently.
//
// Fault supervision composes unchanged: each worker owns a private
// execSlot, so a stalled Process call (ProcessTimeout) abandons only that
// worker's executor while the other N-1 keep executing, and retry backoff
// delays only the faulted message's worker. Suspend/drain semantics hold
// because the inflight count is decremented (and the source queue acked)
// only after the resequencer emits — so Quiesced/CanTerminate see items
// parked in the resequencer exactly as they see items in the pump handoff.
//
// Head-of-line blocking is bounded by construction: the admission gate (a
// token channel of capacity workers that pumps acquire per fetched item and
// the resequencer releases per handled item) caps fetched-but-unreleased
// items at workers, so at most workers-1 completions can be parked waiting
// for an earlier sequence number — the missing one holds the last token.

import (
	"fmt"

	"mobigate/internal/obs"
)

var (
	mWorkersBusy = obs.DefaultIntGauge(obs.MStreamletWorkersBusy)
	mReseqDepth  = obs.DefaultIntGauge(obs.MStreamletReseqDepth)
)

// SetWorkers fixes the execution-plane fan-out width before Start. n < 1
// is treated as 1 (the serial worker). Declarations with a workers
// attribute do not need this call; New already applies them.
func (s *Streamlet) SetWorkers(n int) error {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateCreated {
		return fmt.Errorf("streamlet %s: workers must be set before Start (state %s)", s.id, s.state)
	}
	s.workers = n
	return nil
}

// Workers returns the configured fan-out width (1 = serial).
func (s *Streamlet) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// ResequencerPeak returns the high-water mark of completions that sat in
// the resequencer waiting for an earlier sequence number — the observable
// cost of head-of-line blocking (bounded by workers-1).
func (s *Streamlet) ResequencerPeak() int64 { return s.reseqPeak.Load() }

// parallelWorker is one of N concurrent processMsg loops. It runs only the
// parallel-safe produce stage and forwards the completion; ordering is the
// resequencer's job.
func (s *Streamlet) parallelWorker() {
	defer s.wg.Done()
	slot := &execSlot{}
	defer slot.close()
	for {
		select {
		case <-s.done:
			return
		case it := <-s.work:
			if s.State() == StateEnded {
				s.inflight.Add(-1)
				it.src.Ack() // abandoned on shutdown
				return
			}
			mWorkersBusy.Add(1)
			c := s.produce(it, slot)
			mWorkersBusy.Add(-1)
			select {
			case s.comps <- &c:
			case <-s.done:
				// Shutdown raced the handoff; the item is abandoned with
				// End's documented semantics.
				s.inflight.Add(-1)
				it.src.Ack()
				return
			}
		}
	}
}

// resequencer restores fetch order: completions arrive in any order and
// are released (finish + inflight/ack accounting) strictly by sequence
// number. Every dispatched item produces a completion while the streamlet
// runs — faulted, dropped, and type-failed messages complete with nothing
// to emit — so a gap can only mean shutdown, which exits via done.
func (s *Streamlet) resequencer() {
	defer s.wg.Done()
	pending := make(map[uint64]*completion)
	var next uint64
	defer func() {
		if len(pending) > 0 {
			mReseqDepth.Add(-int64(len(pending)))
		}
	}()
	for {
		select {
		case <-s.done:
			return
		case c := <-s.comps:
			pending[c.it.seq] = c
			mReseqDepth.Add(1)
			for {
				nc, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				mReseqDepth.Add(-1)
				next++
				s.finish(nc, nil)
				s.inflight.Add(-1)
				nc.it.src.Ack()
				<-s.tokens // readmit one fetch
			}
			// The high-water mark counts completions genuinely parked
			// behind a missing earlier one (measured after the release
			// sweep); the admission gate bounds it at workers-1.
			if d := int64(len(pending)); d > s.reseqPeak.Load() {
				s.reseqPeak.Store(d)
			}
		}
	}
}
