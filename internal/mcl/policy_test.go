package mcl

import (
	"fmt"
	"strings"
	"testing"
)

// policyScript embeds rule text into a minimal two-instance stream with a
// compressor definition available for insert actions.
func policyScript(rules string) string {
	return fmt.Sprintf(`
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet tc_def {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);
	%s
}
`, rules)
}

func parsePolicies(t *testing.T, rules string) []*PolicyRule {
	t.Helper()
	f, err := Parse(policyScript(rules))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	d, ok := f.Stream("s")
	if !ok {
		t.Fatal("stream s missing")
	}
	return d.Policies
}

func TestPolicyParseAccept(t *testing.T) {
	t.Run("insert", func(t *testing.T) {
		rules := parsePolicies(t, `when (bandwidth < 100000) -> insert tc_def between hd and cm;`)
		if len(rules) != 1 {
			t.Fatalf("got %d rules", len(rules))
		}
		r := rules[0]
		if r.ID != "rule-1" {
			t.Errorf("ID = %q, want rule-1", r.ID)
		}
		if r.Cond.Signal != SignalBandwidth || r.Cond.Op != CmpLt || r.Cond.Value != 100000 {
			t.Errorf("cond = %+v", r.Cond)
		}
		if r.Sustain != 0 || r.Cooldown != 0 {
			t.Errorf("hysteresis defaults not zero: %+v", r)
		}
		a, ok := r.Action.(*InsertAction)
		if !ok || a.Def != "tc_def" || a.Producer != "hd" || a.Consumer != "cm" {
			t.Errorf("action = %#v", r.Action)
		}
	})

	t.Run("remove with hysteresis", func(t *testing.T) {
		rules := parsePolicies(t, `when (bandwidth >= 100000) sustain 3 cooldown 5 -> remove hd;`)
		r := rules[0]
		if r.Cond.Op != CmpGe || r.Sustain != 3 || r.Cooldown != 5 {
			t.Errorf("rule = %+v", r)
		}
		if a, ok := r.Action.(*RemoveAction); !ok || a.Inst != "hd" {
			t.Errorf("action = %#v", r.Action)
		}
	})

	t.Run("workers", func(t *testing.T) {
		rules := parsePolicies(t, `when (workers_busy > 4) -> workers hd = 8;`)
		if a, ok := rules[0].Action.(*WorkersAction); !ok || a.Inst != "hd" || a.N != 8 {
			t.Errorf("action = %#v", rules[0].Action)
		}
	})

	t.Run("param", func(t *testing.T) {
		rules := parsePolicies(t,
			`when (queue_depth <= 2) -> param hd level = 9;
			 when (faults > 0) -> param hd mode = "fail safe";`)
		if len(rules) != 2 {
			t.Fatalf("got %d rules", len(rules))
		}
		if a := rules[0].Action.(*ParamAction); a.Name != "level" || a.Value != "9" {
			t.Errorf("action = %#v", a)
		}
		if a := rules[1].Action.(*ParamAction); a.Value != "fail safe" {
			t.Errorf("action = %#v", a)
		}
		if rules[1].ID != "rule-2" {
			t.Errorf("ID = %q, want rule-2", rules[1].ID)
		}
	})

	t.Run("policies beside event blocks", func(t *testing.T) {
		f, err := Parse(policyScript(`
	when (LOW_BANDWIDTH) {
		disconnect (hd.po, cm.pi);
	}
	when (slo_violations > 0) -> remove hd;`))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		d, _ := f.Stream("s")
		if len(d.Whens) != 1 || len(d.Policies) != 1 {
			t.Fatalf("whens=%d policies=%d, want 1 and 1", len(d.Whens), len(d.Policies))
		}
	})
}

func TestPolicyParseReject(t *testing.T) {
	cases := []struct {
		name, rule, wantErr string
	}{
		{"unknown signal", `when (latency < 5) -> remove hd;`, "unknown policy signal"},
		{"no comparison", `when (bandwidth = 5) -> remove hd;`, "comparison operator"},
		{"non-numeric threshold", `when (bandwidth < five) -> remove hd;`, "expected number"},
		{"sustain zero", `when (bandwidth < 5) sustain 0 -> remove hd;`, "sustain must be a number >= 1"},
		{"cooldown zero", `when (bandwidth < 5) cooldown 0 -> remove hd;`, "cooldown must be a number >= 1"},
		{"missing arrow", `when (bandwidth < 5) remove hd;`, "'->'"},
		{"unknown action", `when (bandwidth < 5) -> explode hd;`, "unknown policy action"},
		{"insert missing between", `when (bandwidth < 5) -> insert tc_def hd and cm;`, "expected 'between'"},
		{"workers zero", `when (bandwidth < 5) -> workers hd = 0;`, "workers must be a number >= 1"},
		{"missing semicolon", `when (bandwidth < 5) -> remove hd`, "';'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(policyScript(c.rule))
			if err == nil {
				t.Fatalf("Parse accepted %q", c.rule)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestPolicyCompile(t *testing.T) {
	rejects := []struct {
		name, rule, wantErr string
	}{
		{"insert unknown def", `when (bandwidth < 5) -> insert nosuch between hd and cm;`,
			"unknown streamlet definition"},
		{"insert unknown producer", `when (bandwidth < 5) -> insert tc_def between xx and cm;`,
			"unknown streamlet instance"},
		{"remove unknown instance", `when (bandwidth < 5) -> remove nosuch;`,
			"unknown streamlet instance"},
		{"workers unknown instance", `when (bandwidth < 5) -> workers nosuch = 2;`,
			"unknown streamlet instance"},
	}
	for _, c := range rejects {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(policyScript(c.rule), nil)
			if err == nil {
				t.Fatalf("Compile accepted %q", c.rule)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	t.Run("instance name collision", func(t *testing.T) {
		// The insert def shares its name with a live instance: the splice
		// would instantiate tc_def under an id that is already taken.
		src := policyScript(`
	streamlet tc_def = new-streamlet (tc_def);
	when (bandwidth < 5) -> insert tc_def between hd and cm;`)
		if _, err := Compile(src, nil); err == nil || !strings.Contains(err.Error(), "already an instance") {
			t.Fatalf("Compile err = %v, want instance-name collision", err)
		}
	})

	t.Run("insert type check", func(t *testing.T) {
		src := `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet img {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "image/downsample"; }
}
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);
	when (bandwidth < 5) -> insert img between hd and cm;
}
`
		if _, err := Compile(src, nil); err == nil || !strings.Contains(err.Error(), "type mismatch") {
			t.Fatalf("Compile err = %v, want type mismatch", err)
		}
	})

	t.Run("remove may reference a later insert's instance", func(t *testing.T) {
		src := policyScript(`
	when (bandwidth >= 100000) -> remove tc_def;
	when (bandwidth < 100000) -> insert tc_def between hd and cm;`)
		cfg, err := Compile(src, nil)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		sc := cfg.Stream("s")
		if len(sc.Policies) != 2 {
			t.Fatalf("policies = %d", len(sc.Policies))
		}
		if sc.Policies[1].InsertDecl == nil || sc.Policies[1].InsertIn != "pi" || sc.Policies[1].InsertOut != "po" {
			t.Errorf("insert config = %+v", sc.Policies[1])
		}
		if got := sc.PolicyTargetDecl("tc_def"); got == nil || got.Name != "tc_def" {
			t.Errorf("PolicyTargetDecl(tc_def) = %v", got)
		}
	})
}

// TestPolicyFormatIdempotent checks Format∘Parse is a fixed point for
// scripts carrying every policy form.
func TestPolicyFormatIdempotent(t *testing.T) {
	src := policyScript(`
	when (bandwidth < 100000) sustain 2 cooldown 4 -> insert tc_def between hd and cm;
	when (bandwidth >= 100000) -> remove tc_def;
	when (workers_busy > 3) -> workers hd = 4;
	when (slo_violations > 0) cooldown 8 -> param hd mode = "fail safe";`)
	f1, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	once := Format(f1)
	f2, err := Parse(once)
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%s", err, once)
	}
	twice := Format(f2)
	if once != twice {
		t.Fatalf("Format not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
	if _, err := Compile(once, nil); err != nil {
		t.Fatalf("Compile(Format): %v", err)
	}
}
