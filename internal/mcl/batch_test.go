package mcl

import (
	"strings"
	"testing"
)

func TestParseBatchAttribute(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; batch = 32; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := f.Streamlet("comp")
	if !ok {
		t.Fatal("streamlet missing")
	}
	if d.Batch != 32 {
		t.Errorf("batch = %d, want 32", d.Batch)
	}
}

func TestParseBatchStatefulAllowed(t *testing.T) {
	// Unlike workers, batching never reorders, so STATEFUL may batch.
	f, err := Parse(`streamlet a { attribute { type = STATEFUL; batch = 8; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := f.Streamlet("a"); d.Batch != 8 {
		t.Errorf("batch = %d, want 8", d.Batch)
	}
}

func TestParseBatchErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"non-numeric",
			`streamlet a { attribute { batch = lots; } }`,
			"batch must be a number",
		},
		{
			"zero",
			`streamlet a { attribute { batch = 0; } }`,
			"batch must be a number >= 1",
		},
		{
			"over-max",
			`streamlet a { attribute { batch = 5000; } }`,
			"exceeds the maximum",
		},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestPrintBatchRoundTrip(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; workers = 2; batch = 16; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "batch = 16;") {
		t.Fatalf("formatted output lacks batch attribute:\n%s", out)
	}
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	d, _ := f2.Streamlet("comp")
	if d.Batch != 16 || d.Workers != 2 {
		t.Errorf("round-tripped batch = %d workers = %d, want 16/2", d.Batch, d.Workers)
	}
}

func TestPrintOmitsBatchOne(t *testing.T) {
	f, err := Parse(`streamlet a { attribute { type = STATELESS; batch = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if out := Format(f); strings.Contains(out, "batch") {
		t.Errorf("batch = 1 should print nothing:\n%s", out)
	}
}
