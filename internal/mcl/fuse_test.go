package mcl

import (
	"strings"
	"testing"
)

func TestParseFuseAttribute(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; fuse = off; }
}
streamlet pass {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; fuse = on; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Streamlet("comp")
	if d.Fuse != FuseOff {
		t.Errorf("comp fuse = %v, want off", d.Fuse)
	}
	d, _ = f.Streamlet("pass")
	if d.Fuse != FuseOn {
		t.Errorf("pass fuse = %v, want on", d.Fuse)
	}
}

func TestParseFuseDefaults(t *testing.T) {
	f, err := Parse(`streamlet a { attribute { type = STATELESS; } }`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Streamlet("a")
	if d.Fuse != FuseDefault {
		t.Errorf("fuse = %v, want default", d.Fuse)
	}
}

func TestParseFuseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"bad value",
			`streamlet a { attribute { fuse = maybe; } }`,
			"fuse must be on or off",
		},
		{
			"numeric",
			`streamlet a { attribute { fuse = 1; } }`,
			"fuse must be on or off",
		},
		{
			"stateful on",
			`streamlet a { attribute { type = STATEFUL; fuse = on; } }`,
			"requires type = STATELESS",
		},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseFuseOffOnStateful(t *testing.T) {
	// fuse = off is a pure opt-out and is always legal, even on STATEFUL
	// streamlets (where it is redundant but harmless).
	f, err := Parse(`streamlet a { attribute { type = STATEFUL; fuse = off; } }`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Streamlet("a")
	if d.Fuse != FuseOff {
		t.Errorf("fuse = %v, want off", d.Fuse)
	}
}

func TestPrintFuseRoundTrip(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; fuse = off; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "fuse = off;") {
		t.Fatalf("formatted output lacks fuse attribute:\n%s", out)
	}
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	d, _ := f2.Streamlet("comp")
	if d.Fuse != FuseOff {
		t.Errorf("round-tripped fuse = %v, want off", d.Fuse)
	}
}

func TestPrintOmitsDefaultFuse(t *testing.T) {
	f, err := Parse(`streamlet a { attribute { type = STATELESS; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if out := Format(f); strings.Contains(out, "fuse") {
		t.Errorf("default fuse should print nothing:\n%s", out)
	}
}
