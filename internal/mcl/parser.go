package mcl

import (
	"strconv"
	"strings"

	"mobigate/internal/mime"
)

// Parser consumes a token stream and produces a *File.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses an MCL script.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokenKind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for {
		switch p.cur().Kind {
		case TokEOF:
			if err := validateFile(f); err != nil {
				return nil, err
			}
			return f, nil
		case TokStreamlet:
			d, err := p.parseStreamletDecl()
			if err != nil {
				return nil, err
			}
			f.Streamlets = append(f.Streamlets, d)
		case TokChannel:
			d, err := p.parseChannelDecl()
			if err != nil {
				return nil, err
			}
			f.Channels = append(f.Channels, d)
		case TokMain, TokStream:
			d, err := p.parseStreamDecl()
			if err != nil {
				return nil, err
			}
			f.Streams = append(f.Streams, d)
		default:
			return nil, errf(p.cur().Pos, "expected declaration, found %s", p.cur())
		}
	}
}

// parseMediaType parses `type [/ subtype]` where each part is an identifier
// or `*`. Examples: text, text/richtext, image/*, */*.
func (p *Parser) parseMediaType() (mime.MediaType, error) {
	start := p.cur().Pos
	part := func() (string, error) {
		if t, ok := p.accept(TokStar); ok {
			return t.Text, nil
		}
		t, err := p.expect(TokIdent)
		if err != nil {
			return "", err
		}
		return t.Text, nil
	}
	top, err := part()
	if err != nil {
		return mime.MediaType{}, errf(start, "expected media type")
	}
	expr := top
	if _, ok := p.accept(TokSlash); ok {
		sub, err := part()
		if err != nil {
			return mime.MediaType{}, errf(start, "expected media subtype after '/'")
		}
		expr = top + "/" + sub
	}
	mt, err := mime.ParseMediaType(expr)
	if err != nil {
		return mime.MediaType{}, errf(start, "%v", err)
	}
	return mt, nil
}

// parsePortBlock parses `port { in name : type; out name : type; ... }`.
func (p *Parser) parsePortBlock() ([]PortDecl, error) {
	if _, err := p.expect(TokPort); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var ports []PortDecl
	for {
		if _, ok := p.accept(TokRBrace); ok {
			return ports, nil
		}
		var dir PortDir
		switch p.cur().Kind {
		case TokIn:
			dir = PortIn
		case TokOut:
			dir = PortOut
		default:
			return nil, errf(p.cur().Pos, "expected 'in' or 'out' port declaration, found %s", p.cur())
		}
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		mt, err := p.parseMediaType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		ports = append(ports, PortDecl{Dir: dir, Name: name.Text, Type: mt, Pos: name.Pos})
	}
}

// attrValue is one parsed `key = value;` attribute.
type attrValue struct {
	key  string
	text string // identifier or string literal text
	num  int
	kind TokenKind
	pos  Pos
}

func (p *Parser) parseAttributeBlock() ([]attrValue, error) {
	if _, err := p.expect(TokAttribute); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var attrs []attrValue
	for {
		if _, ok := p.accept(TokRBrace); ok {
			return attrs, nil
		}
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEquals); err != nil {
			return nil, err
		}
		av := attrValue{key: strings.ToLower(key.Text), pos: key.Pos}
		switch t := p.cur(); t.Kind {
		case TokIdent:
			av.text = t.Text
			av.kind = TokIdent
			p.next()
		case TokString:
			av.text = t.Text
			av.kind = TokString
			p.next()
		case TokNumber:
			n, err := strconv.Atoi(t.Text)
			if err != nil {
				return nil, errf(t.Pos, "invalid number %q", t.Text)
			}
			av.num = n
			av.kind = TokNumber
			p.next()
		default:
			return nil, errf(t.Pos, "expected attribute value, found %s", t)
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		attrs = append(attrs, av)
	}
}

func (p *Parser) parseStreamletDecl() (*StreamletDecl, error) {
	kw, _ := p.expect(TokStreamlet)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	d := &StreamletDecl{Name: name.Text, Pos: kw.Pos}
	for {
		switch p.cur().Kind {
		case TokPort:
			ports, err := p.parsePortBlock()
			if err != nil {
				return nil, err
			}
			d.Ports = append(d.Ports, ports...)
		case TokAttribute:
			attrs, err := p.parseAttributeBlock()
			if err != nil {
				return nil, err
			}
			for _, a := range attrs {
				switch a.key {
				case "type":
					switch strings.ToUpper(a.text) {
					case "STATELESS":
						d.Kind = Stateless
					case "STATEFUL":
						d.Kind = Stateful
					default:
						return nil, errf(a.pos, "streamlet type must be STATELESS or STATEFUL, got %q", a.text)
					}
				case "library":
					d.Library = a.text
				case "description":
					d.Description = a.text
				case "workers":
					if a.kind != TokNumber || a.num < 1 {
						return nil, errf(a.pos, "streamlet workers must be a number >= 1")
					}
					d.Workers = a.num
				case "batch":
					if a.kind != TokNumber || a.num < 1 {
						return nil, errf(a.pos, "streamlet batch must be a number >= 1")
					}
					if a.num > MaxBatch {
						return nil, errf(a.pos, "streamlet batch = %d exceeds the maximum %d", a.num, MaxBatch)
					}
					d.Batch = a.num
				case "fuse":
					switch strings.ToLower(a.text) {
					case "on":
						d.Fuse = FuseOn
					case "off":
						d.Fuse = FuseOff
					default:
						return nil, errf(a.pos, "streamlet fuse must be on or off, got %q", a.text)
					}
				default:
					if name, ok := strings.CutPrefix(a.key, "param-"); ok && name != "" {
						if d.Params == nil {
							d.Params = make(map[string]string)
						}
						if a.kind == TokNumber {
							d.Params[name] = strconv.Itoa(a.num)
						} else {
							d.Params[name] = a.text
						}
						continue
					}
					return nil, errf(a.pos, "unknown streamlet attribute %q", a.key)
				}
			}
		case TokRBrace:
			p.next()
			return d, nil
		default:
			return nil, errf(p.cur().Pos, "expected 'port', 'attribute' or '}' in streamlet %s, found %s", d.Name, p.cur())
		}
	}
}

func (p *Parser) parseChannelDecl() (*ChannelDecl, error) {
	kw, _ := p.expect(TokChannel)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	d := &ChannelDecl{Name: name.Text, Pos: kw.Pos, BufferKB: DefaultBufferKB}
	for {
		switch p.cur().Kind {
		case TokPort:
			ports, err := p.parsePortBlock()
			if err != nil {
				return nil, err
			}
			d.Ports = append(d.Ports, ports...)
		case TokAttribute:
			attrs, err := p.parseAttributeBlock()
			if err != nil {
				return nil, err
			}
			for _, a := range attrs {
				switch a.key {
				case "type":
					switch strings.ToUpper(a.text) {
					case "SYNC", "SYNCHRONOUS":
						d.Mode = Sync
					case "ASYNC", "ASYNCHRONOUS":
						d.Mode = Async
					default:
						return nil, errf(a.pos, "channel type must be SYNC or ASYNC, got %q", a.text)
					}
				case "category":
					c, ok := ParseChannelCategory(strings.ToUpper(a.text))
					if !ok {
						return nil, errf(a.pos, "channel category must be one of S, BB, BK, KB, KK; got %q", a.text)
					}
					d.Category = c
				case "buffer":
					if a.kind != TokNumber || a.num <= 0 {
						return nil, errf(a.pos, "channel buffer must be a positive number of KBytes")
					}
					d.BufferKB = a.num
				case "description":
					// informative only
				default:
					return nil, errf(a.pos, "unknown channel attribute %q", a.key)
				}
			}
		case TokRBrace:
			p.next()
			return d, nil
		default:
			return nil, errf(p.cur().Pos, "expected 'port', 'attribute' or '}' in channel %s, found %s", d.Name, p.cur())
		}
	}
}

func (p *Parser) parseStreamDecl() (*StreamDecl, error) {
	d := &StreamDecl{}
	if t, ok := p.accept(TokMain); ok {
		d.Main = true
		d.Pos = t.Pos
	}
	kw, err := p.expect(TokStream)
	if err != nil {
		return nil, err
	}
	if !d.Main {
		d.Pos = kw.Pos
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokRBrace:
			p.next()
			return d, nil
		case TokWhen:
			w, r, err := p.parseWhen()
			if err != nil {
				return nil, err
			}
			if w != nil {
				d.Whens = append(d.Whens, w)
			} else {
				r.ID = "rule-" + strconv.Itoa(len(d.Policies)+1)
				d.Policies = append(d.Policies, r)
			}
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			d.Body = append(d.Body, s)
		}
	}
}

// parseWhenBlockBody parses the remainder of an event block after
// `when ( EVENT`, with the closing paren as the current token. The `when`
// keyword and event tokens arrive from parseWhen, which has already
// disambiguated event blocks from policy rules (policy.go).
func (p *Parser) parseWhenBlockBody(kw, ev Token) (*WhenBlock, error) {
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	w := &WhenBlock{Event: strings.ToUpper(ev.Text), Pos: kw.Pos}
	for {
		if _, ok := p.accept(TokRBrace); ok {
			return w, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		w.Body = append(w.Body, s)
	}
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch t := p.cur(); t.Kind {
	case TokStreamlet:
		return p.parseNewDecl(TokNewStreamlet)
	case TokChannel:
		return p.parseNewDecl(TokNewChannel)
	case TokConnect:
		return p.parseConnect()
	case TokDisconnect:
		return p.parseDisconnect()
	case TokDisconnectAll:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &DisconnectAllStmt{Var: v.Text, Pos: t.Pos}, nil
	case TokRemoveStreamlet, TokRemoveChannel:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		if t.Kind == TokRemoveStreamlet {
			return &RemoveStreamletStmt{Var: v.Text, Pos: t.Pos}, nil
		}
		return &RemoveChannelStmt{Var: v.Text, Pos: t.Pos}, nil
	default:
		return nil, errf(t.Pos, "expected statement, found %s", t)
	}
}

// parseNewDecl parses `streamlet v1, v2 = new-streamlet (def);` or the
// channel analogue. The figure 4-8 spelling `new channel (def)` (space
// instead of hyphen) is also accepted.
func (p *Parser) parseNewDecl(want TokenKind) (Stmt, error) {
	start := p.next() // 'streamlet' or 'channel' keyword
	var vars []string
	for {
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		vars = append(vars, v.Text)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case want:
		p.next()
	case TokIdent:
		// `new streamlet` / `new channel` split spelling.
		if strings.ToLower(p.cur().Text) == "new" {
			p.next()
			switch {
			case want == TokNewStreamlet && p.cur().Kind == TokStreamlet,
				want == TokNewChannel && p.cur().Kind == TokChannel:
				p.next()
			default:
				return nil, errf(p.cur().Pos, "expected %s", want)
			}
		} else {
			return nil, errf(p.cur().Pos, "expected %s, found %s", want, p.cur())
		}
	default:
		return nil, errf(p.cur().Pos, "expected %s, found %s", want, p.cur())
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	def, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if want == TokNewStreamlet {
		return &NewStreamletStmt{Vars: vars, Def: def.Text, Pos: start.Pos}, nil
	}
	return &NewChannelStmt{Vars: vars, Def: def.Text, Pos: start.Pos}, nil
}

func (p *Parser) parsePortRef() (PortRef, error) {
	inst, err := p.expect(TokIdent)
	if err != nil {
		return PortRef{}, err
	}
	if _, err := p.expect(TokDot); err != nil {
		return PortRef{}, err
	}
	port, err := p.expect(TokIdent)
	if err != nil {
		return PortRef{}, err
	}
	return PortRef{Inst: inst.Text, Port: port.Text, Pos: inst.Pos}, nil
}

func (p *Parser) parseConnect() (Stmt, error) {
	kw, _ := p.expect(TokConnect)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	from, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	st := &ConnectStmt{From: from, To: to, Pos: kw.Pos}
	if _, ok := p.accept(TokComma); ok {
		ch, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st.Channel = ch.Text
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseDisconnect() (Stmt, error) {
	kw, _ := p.expect(TokDisconnect)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	from, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &DisconnectStmt{From: from, To: to, Pos: kw.Pos}, nil
}

// validateFile applies structural rules that do not need the compiler:
// name uniqueness (ENTITY identifiers are global names, §5.1 — with the
// one sanctioned exception that a streamlet declaration may share the name
// of a stream, which is how Figure 4-9 maps a stream to a composite
// streamlet) and channel port shape (exactly one in, one out, §5.1.2).
// MaxBatch bounds the `batch` streamlet attribute: a pump's drain buffer
// and a worker's flush buffer are both sized by it, so an unbounded value
// would let one declaration pin arbitrary memory.
const MaxBatch = 1024

func validateFile(f *File) error {
	seen := map[string]Pos{}
	check := func(name string, pos Pos) error {
		if prev, ok := seen[name]; ok {
			return errf(pos, "duplicate declaration of %q (previous at %s)", name, prev)
		}
		seen[name] = pos
		return nil
	}
	for _, d := range f.Streamlets {
		if err := check(d.Name, d.Pos); err != nil {
			return err
		}
		if err := validatePorts(d.Name, d.Ports); err != nil {
			return err
		}
		// Parallel fan-out is only sound for pure per-message transforms:
		// a STATEFUL streamlet carries cross-message state, so concurrent
		// Process calls would race on it no matter how the runtime
		// resequences the outputs.
		if d.Workers > 1 && d.Kind == Stateful {
			return errf(d.Pos, "streamlet %s: workers = %d requires type = STATELESS (stateful streamlets cannot run in parallel)", d.Name, d.Workers)
		}
		// Fusion runs Process calls of adjacent streamlets back-to-back on
		// one goroutine with no queue between them; a STATEFUL streamlet
		// needs its own serialized hop, so an explicit fuse = on is a
		// contradiction (fuse = off is always allowed).
		if d.Fuse == FuseOn && d.Kind == Stateful {
			return errf(d.Pos, "streamlet %s: fuse = on requires type = STATELESS (stateful streamlets keep their own hop)", d.Name)
		}
	}
	for _, d := range f.Channels {
		if err := check(d.Name, d.Pos); err != nil {
			return err
		}
		if err := validatePorts(d.Name, d.Ports); err != nil {
			return err
		}
		ins, outs := 0, 0
		for _, p := range d.Ports {
			if p.Dir == PortIn {
				ins++
			} else {
				outs++
			}
		}
		if ins != 1 || outs != 1 {
			return errf(d.Pos, "channel %s must declare exactly one in port and one out port", d.Name)
		}
	}
	mains := 0
	streamSeen := map[string]Pos{}
	for _, d := range f.Streams {
		if prev, ok := streamSeen[d.Name]; ok {
			return errf(d.Pos, "duplicate stream %q (previous at %s)", d.Name, prev)
		}
		streamSeen[d.Name] = d.Pos
		// A channel may not share a stream's name; a streamlet may (it is
		// the composite wrapper of Figure 4-9).
		if prev, ok := seen[d.Name]; ok {
			if _, isStreamlet := f.Streamlet(d.Name); !isStreamlet {
				return errf(d.Pos, "stream %q clashes with a non-streamlet declaration at %s", d.Name, prev)
			}
		}
		if d.Main {
			mains++
		}
	}
	if mains > 1 {
		return errf(f.Streams[0].Pos, "multiple streams labeled main")
	}
	return nil
}

func validatePorts(owner string, ports []PortDecl) error {
	seen := map[string]Pos{}
	for _, p := range ports {
		if prev, ok := seen[p.Name]; ok {
			return errf(p.Pos, "duplicate port %q in %s (previous at %s)", p.Name, owner, prev)
		}
		seen[p.Name] = p.Pos
	}
	return nil
}
