package mcl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`streamlet s { port { in pi : text/plain; } }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokStreamlet, TokIdent, TokLBrace, TokPort, TokLBrace,
		TokIn, TokIdent, TokColon, TokIdent, TokSlash, TokIdent,
		TokSemicolon, TokRBrace, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexHyphenatedKeywords(t *testing.T) {
	toks, err := Lex(`new-streamlet remove-streamlet new-channel remove-channel x-raster`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokNewStreamlet, TokRemoveStreamlet, TokNewChannel, TokRemoveChannel, TokIdent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[4].Text != "x-raster" {
		t.Errorf("hyphenated ident = %q", toks[4].Text)
	}
}

func TestLexTrailingHyphenNotConsumed(t *testing.T) {
	// "abc-" should lex as ident "abc" and then fail on the stray '-'.
	if _, err := Lex(`abc- `); err == nil {
		t.Error("stray hyphen accepted")
	}
}

func TestLexComments(t *testing.T) {
	src := `
// a line comment
streamlet /* inline */ s {
/* a block
   comment */ }
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokStreamlet, TokIdent, TokLBrace, TokRBrace, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("with comments: token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex(`streamlet /* never closed`); err == nil {
		t.Error("unterminated block comment accepted")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`"hello world" "with \"escape\" and \n newline"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello world" {
		t.Errorf("string 0 = %q", toks[0].Text)
	}
	if toks[1].Text != "with \"escape\" and \n newline" {
		t.Errorf("string 1 = %q", toks[1].Text)
	}
	for _, bad := range []string{`"unterminated`, "\"newline\nin string\"", `"bad \q escape"`} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) accepted", bad)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`buffer = 1024;`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokNumber || toks[2].Text != "1024" {
		t.Errorf("number token = %v", toks[2])
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("streamlet\n  foo")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("pos 0 = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("pos 1 = %v", toks[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	_, err := Lex("streamlet $bad")
	if err == nil {
		t.Fatal("unexpected char accepted")
	}
	if !strings.Contains(err.Error(), "1:11") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex(`STREAMLET Connect WHEN`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokStreamlet, TokConnect, TokWhen}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexFixtureScript(t *testing.T) {
	toks, err := Lex(distillationScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 100 {
		t.Errorf("fixture produced only %d tokens", len(toks))
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF")
	}
}
