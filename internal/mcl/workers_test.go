package mcl

import (
	"strings"
	"testing"
)

func TestParseWorkersAttribute(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; workers = 4; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := f.Streamlet("comp")
	if !ok {
		t.Fatal("streamlet missing")
	}
	if d.Workers != 4 {
		t.Errorf("workers = %d, want 4", d.Workers)
	}
	if d.Kind != Stateless {
		t.Errorf("kind = %v", d.Kind)
	}
}

func TestParseWorkersDefaultsToZero(t *testing.T) {
	f, err := Parse(`streamlet a { attribute { type = STATELESS; } }`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Streamlet("a")
	if d.Workers != 0 {
		t.Errorf("workers = %d, want 0 (serial)", d.Workers)
	}
}

func TestParseWorkersErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"non-numeric",
			`streamlet a { attribute { workers = lots; } }`,
			"workers must be a number",
		},
		{
			"zero",
			`streamlet a { attribute { workers = 0; } }`,
			"workers must be a number >= 1",
		},
		{
			"stateful",
			`streamlet a { attribute { type = STATEFUL; workers = 2; } }`,
			"requires type = STATELESS",
		},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestPrintWorkersRoundTrip(t *testing.T) {
	src := `
streamlet comp {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; workers = 3; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "workers = 3;") {
		t.Fatalf("formatted output lacks workers attribute:\n%s", out)
	}
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	d, _ := f2.Streamlet("comp")
	if d.Workers != 3 {
		t.Errorf("round-tripped workers = %d, want 3", d.Workers)
	}
}

func TestPrintOmitsSerialWorkers(t *testing.T) {
	f, err := Parse(`streamlet a { attribute { type = STATELESS; workers = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if out := Format(f); strings.Contains(out, "workers") {
		t.Errorf("workers = 1 should print nothing:\n%s", out)
	}
}
