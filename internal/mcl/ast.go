package mcl

import (
	"mobigate/internal/mime"
)

// File is a parsed MCL script: a set of streamlet definitions, channel
// definitions, and stream (composition) descriptions.
type File struct {
	Streamlets []*StreamletDecl
	Channels   []*ChannelDecl
	Streams    []*StreamDecl
}

// PortDir distinguishes input (sink) from output (source) ports.
type PortDir int

const (
	// PortIn is a sink port: the entity reads messages from it.
	PortIn PortDir = iota
	// PortOut is a source port: the entity writes messages to it.
	PortOut
)

func (d PortDir) String() string {
	if d == PortIn {
		return "in"
	}
	return "out"
}

// PortDecl declares a typed port (Figure 4-3): `in pi : multipart/mixed;`.
type PortDecl struct {
	Dir  PortDir
	Name string
	Type mime.MediaType
	Pos  Pos
}

// StreamletKind is the Type attribute: STATELESS streamlets may be pooled
// and shared between streams; STATEFUL ones are per-stream (§3.3.4).
type StreamletKind int

const (
	Stateless StreamletKind = iota
	Stateful
)

func (k StreamletKind) String() string {
	if k == Stateless {
		return "STATELESS"
	}
	return "STATEFUL"
}

// StreamletDecl is a streamlet definition per Figure 4-3, extended with
// the §8.2.1 control-interface recommendation: attribute entries of the
// form `param-<name> = <value>;` become operation parameters the
// coordinator hands to the streamlet at instantiation (e.g. a compression
// rate for the text compressor).
type StreamletDecl struct {
	Name        string
	Ports       []PortDecl
	Kind        StreamletKind
	Library     string // code-level component, e.g. "general/switch"
	Description string
	// Workers is the declared execution-plane fan-out width (the `workers`
	// attribute): how many worker goroutines may run Process concurrently
	// for an instance of this streamlet. Zero or one means the default
	// serial worker. Only STATELESS, order-insensitive streamlets may
	// declare workers > 1; the parser and the semantic model reject the
	// rest (see internal/semantics).
	Workers int
	// Batch is the declared handoff batch size (the `batch` attribute): how
	// many messages the instance's pump may drain from an input queue in
	// one batched fetch, and how many emissions it may flush downstream in
	// one batched post. Zero or one means today's one-message-per-handoff
	// behavior. Batching never reorders (the drain and flush both preserve
	// FIFO), so unlike `workers` it is open to STATEFUL streamlets too; the
	// parser only bounds the value (see MaxBatch).
	Batch int
	// Fuse is the declared fusion eligibility (the `fuse` attribute): may
	// the runtime collapse this streamlet into a fused hop with stateless
	// neighbours, eliminating the queue handoff between them? The default
	// (FuseDefault) leaves the decision to the runtime, which fuses
	// STATELESS, serial, single-input instances. `fuse = off` pins the
	// instance out of any fused segment; `fuse = on` only asserts
	// eligibility — it never forces fusion of an instance the runtime
	// would reject (and the parser rejects it on STATEFUL streamlets,
	// mirroring the `workers` rule).
	Fuse FuseMode
	// Params are control-interface parameters, keyed without the "param-"
	// prefix; values keep their source spelling.
	Params map[string]string
	Pos    Pos
}

// FuseMode is the tri-state `fuse` streamlet attribute.
type FuseMode int

const (
	// FuseDefault defers to the runtime: stateless serial single-input
	// streamlets fuse, everything else does not.
	FuseDefault FuseMode = iota
	// FuseOn asserts eligibility explicitly (still subject to the runtime
	// fusability rules for neighbours and bindings).
	FuseOn
	// FuseOff pins the streamlet out of any fused segment.
	FuseOff
)

func (f FuseMode) String() string {
	switch f {
	case FuseOn:
		return "on"
	case FuseOff:
		return "off"
	}
	return "default"
}

// Port looks up a declared port by name.
func (d *StreamletDecl) Port(name string) (PortDecl, bool) {
	for _, p := range d.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortDecl{}, false
}

// ChannelMode is the channel Type attribute (Figure 4-4): synchronous
// channels are zero-length buffers, asynchronous ones are FIFO buffers.
type ChannelMode int

const (
	Async ChannelMode = iota
	Sync
)

func (m ChannelMode) String() string {
	if m == Sync {
		return "SYNC"
	}
	return "ASYNC"
}

// ChannelCategory captures the pending-unit disconnect semantics of §4.2.2.
type ChannelCategory int

const (
	// CatBK (break-keep) is the default: the channel keeps its sink
	// connection when detached from its source, so pending units drain.
	CatBK ChannelCategory = iota
	// CatS guarantees no pending units ever exist in the channel.
	CatS
	// CatBB disconnects both ends as soon as one end is disconnected.
	CatBB
	// CatKB keeps the source side when the sink is disconnected.
	CatKB
	// CatKK cannot be disconnected at either side.
	CatKK
)

var categoryNames = map[ChannelCategory]string{
	CatS: "S", CatBB: "BB", CatBK: "BK", CatKB: "KB", CatKK: "KK",
}

func (c ChannelCategory) String() string { return categoryNames[c] }

// ParseChannelCategory maps the attribute token to a category.
func ParseChannelCategory(s string) (ChannelCategory, bool) {
	for c, n := range categoryNames {
		if n == s {
			return c, true
		}
	}
	return 0, false
}

// ChannelDecl is a channel definition per Figure 4-4.
type ChannelDecl struct {
	Name     string
	Ports    []PortDecl // exactly one in, one out after validation
	Mode     ChannelMode
	Category ChannelCategory
	BufferKB int // FIFO capacity in KBytes for Async channels
	Pos      Pos
}

// In returns the channel's sink-side (input) port.
func (d *ChannelDecl) In() PortDecl {
	for _, p := range d.Ports {
		if p.Dir == PortIn {
			return p
		}
	}
	return PortDecl{}
}

// Out returns the channel's source-side (output) port.
func (d *ChannelDecl) Out() PortDecl {
	for _, p := range d.Ports {
		if p.Dir == PortOut {
			return p
		}
	}
	return PortDecl{}
}

// StreamDecl is a stream (coordination script) per Figure 4-5. Body holds
// the initial-configuration statements; Whens the event reactions; Policies
// the condition-triggered autopilot rules (policy.go).
type StreamDecl struct {
	Name     string
	Main     bool
	Body     []Stmt
	Whens    []*WhenBlock
	Policies []*PolicyRule
	Pos      Pos
}

// WhenBlock is `when (EVENT) { ...actions... }`.
type WhenBlock struct {
	Event string
	Body  []Stmt
	Pos   Pos
}

// PortRef references `instance.port` inside a stream body.
type PortRef struct {
	Inst string
	Port string
	Pos  Pos
}

func (r PortRef) String() string { return r.Inst + "." + r.Port }

// Stmt is one composition statement inside a stream or when block.
type Stmt interface {
	stmt()
	Position() Pos
}

// NewStreamletStmt is `streamlet s1, s2 = new-streamlet (def);`.
type NewStreamletStmt struct {
	Vars []string
	Def  string
	Pos  Pos
}

// NewChannelStmt is `channel c1, c2 = new-channel (def);`.
type NewChannelStmt struct {
	Vars []string
	Def  string
	Pos  Pos
}

// RemoveStreamletStmt is `remove-streamlet (s1);`.
type RemoveStreamletStmt struct {
	Var string
	Pos Pos
}

// RemoveChannelStmt is `remove-channel (c1);`.
type RemoveChannelStmt struct {
	Var string
	Pos Pos
}

// ConnectStmt is `connect (p.o, q.i[, c]);`. When Channel is empty the
// system creates a default asynchronous BK channel of 100 KBytes (§4.2.3).
type ConnectStmt struct {
	From    PortRef
	To      PortRef
	Channel string // optional explicit channel variable
	Pos     Pos
}

// DisconnectStmt is `disconnect (p.o, q.i);`.
type DisconnectStmt struct {
	From PortRef
	To   PortRef
	Pos  Pos
}

// DisconnectAllStmt is `disconnectall (s);`.
type DisconnectAllStmt struct {
	Var string
	Pos Pos
}

func (*NewStreamletStmt) stmt()    {}
func (*NewChannelStmt) stmt()      {}
func (*RemoveStreamletStmt) stmt() {}
func (*RemoveChannelStmt) stmt()   {}
func (*ConnectStmt) stmt()         {}
func (*DisconnectStmt) stmt()      {}
func (*DisconnectAllStmt) stmt()   {}

func (s *NewStreamletStmt) Position() Pos    { return s.Pos }
func (s *NewChannelStmt) Position() Pos      { return s.Pos }
func (s *RemoveStreamletStmt) Position() Pos { return s.Pos }
func (s *RemoveChannelStmt) Position() Pos   { return s.Pos }
func (s *ConnectStmt) Position() Pos         { return s.Pos }
func (s *DisconnectStmt) Position() Pos      { return s.Pos }
func (s *DisconnectAllStmt) Position() Pos   { return s.Pos }

// Streamlet looks up a streamlet definition by name.
func (f *File) Streamlet(name string) (*StreamletDecl, bool) {
	for _, d := range f.Streamlets {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Channel looks up a channel definition by name.
func (f *File) Channel(name string) (*ChannelDecl, bool) {
	for _, d := range f.Channels {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Stream looks up a stream declaration by name.
func (f *File) Stream(name string) (*StreamDecl, bool) {
	for _, d := range f.Streams {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// MainStream returns the stream labeled main, or the sole stream when only
// one is declared.
func (f *File) MainStream() (*StreamDecl, bool) {
	for _, d := range f.Streams {
		if d.Main {
			return d, true
		}
	}
	if len(f.Streams) == 1 {
		return f.Streams[0], true
	}
	return nil, false
}
