package mcl

// When-policies: the declarative half of the adaptation autopilot
// (internal/adapt). Alongside the event-triggered `when (EVENT) { ... }`
// blocks of Figure 4-5, a stream may declare condition-triggered rules
//
//	when (bandwidth < 64000) sustain 2 cooldown 4 -> insert tc between hd and cm;
//
// which the autopilot evaluates against sampled context readings and turns
// into the same drain-safe reconfiguration primitives the event blocks use.
// The condition operand is one of a fixed signal vocabulary (KnownPolicySignal);
// `sustain` is the hysteresis width in consecutive true readings and
// `cooldown` the refractory period in evaluation ticks after a firing, both
// optional. This realizes the §8.2.1 recommendation that adaptation policy
// stay in the coordination language, separate from streamlet computation.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Policy condition signals. Each names one reading the autopilot samples
// from the observability and network-emulation surfaces.
const (
	// SignalBandwidth is the emulated link bandwidth in bits/second.
	SignalBandwidth = "bandwidth"
	// SignalSLOViolations is the number of latency-budget violations since
	// the previous evaluation tick.
	SignalSLOViolations = "slo_violations"
	// SignalFaults is the number of streamlet faults (panics, stalls,
	// retries, drops) since the previous evaluation tick.
	SignalFaults = "faults"
	// SignalWorkersBusy is the gauge of busy parallel workers.
	SignalWorkersBusy = "workers_busy"
	// SignalResequencerDepth is the gauge of out-of-order emissions parked
	// in resequencers.
	SignalResequencerDepth = "resequencer_depth"
	// SignalQueueDepth is the gauge of messages queued in channels.
	SignalQueueDepth = "queue_depth"
	// SignalHeapBytes is the gauge of live heap bytes (go_heap_bytes, fed
	// by the obs runtime collector).
	SignalHeapBytes = "heap_bytes"
	// SignalGCPauseP99 is the p99 GC pause of the last collection
	// interval, in microseconds (from go_gc_pause_p99_seconds).
	SignalGCPauseP99 = "gc_pause_p99"
	// SignalSessionsActive is the gauge of live logical sessions in the
	// session layer.
	SignalSessionsActive = "sessions_active"
	// SignalSessionSLOViolations is the number of per-session sampled SLO
	// violations since the previous tick.
	SignalSessionSLOViolations = "session_slo_violations"
	// SignalHealthDegraded is the gauge of degraded health-model
	// components.
	SignalHealthDegraded = "health_degraded"
)

// policySignals maps each condition signal to a short description (used in
// error messages and the docs linter).
var policySignals = map[string]string{
	SignalBandwidth:        "link bandwidth in bits/second",
	SignalSLOViolations:    "latency-budget violations per tick",
	SignalFaults:           "streamlet faults per tick",
	SignalWorkersBusy:      "busy parallel workers (gauge)",
	SignalResequencerDepth: "parked out-of-order emissions (gauge)",
	SignalQueueDepth:       "messages queued in channels (gauge)",

	SignalHeapBytes:            "live heap bytes (gauge)",
	SignalGCPauseP99:           "p99 GC pause in microseconds (gauge)",
	SignalSessionsActive:       "live logical sessions (gauge)",
	SignalSessionSLOViolations: "sampled per-session SLO violations per tick",
	SignalHealthDegraded:       "degraded health-model components (gauge)",
}

// KnownPolicySignal reports whether name is a valid when-policy condition
// operand.
func KnownPolicySignal(name string) bool {
	_, ok := policySignals[name]
	return ok
}

// PolicySignals returns the condition-signal vocabulary, sorted.
func PolicySignals() []string {
	out := make([]string, 0, len(policySignals))
	for s := range policySignals {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CmpOp is a policy-condition comparison operator.
type CmpOp int

const (
	CmpLt CmpOp = iota // <
	CmpLe              // <=
	CmpGt              // >
	CmpGe              // >=
)

var cmpNames = [...]string{"<", "<=", ">", ">="}

func (o CmpOp) String() string {
	if int(o) < len(cmpNames) {
		return cmpNames[o]
	}
	return fmt.Sprintf("CmpOp(%d)", int(o))
}

// Holds reports whether `value OP threshold` is true.
func (o CmpOp) Holds(value, threshold int64) bool {
	switch o {
	case CmpLt:
		return value < threshold
	case CmpLe:
		return value <= threshold
	case CmpGt:
		return value > threshold
	default:
		return value >= threshold
	}
}

// PolicyCond is `signal OP number`.
type PolicyCond struct {
	Signal string
	Op     CmpOp
	Value  int64
	Pos    Pos
}

func (c PolicyCond) String() string {
	return fmt.Sprintf("%s %s %d", c.Signal, c.Op, c.Value)
}

// PolicyAction is the right-hand side of a when-policy rule.
type PolicyAction interface {
	policyAction()
	Position() Pos
	String() string
}

// InsertAction is `insert DEF between PRODUCER and CONSUMER`: splice a new
// instance of streamlet definition DEF (instantiated under the definition's
// name) into the existing producer→consumer connection via the drain-safe
// Insert protocol.
type InsertAction struct {
	Def      string
	Producer string
	Consumer string
	Pos      Pos
}

// RemoveAction is `remove INST`: take the instance out of its linear
// position, bridging its upstream channel to its consumer.
type RemoveAction struct {
	Inst string
	Pos  Pos
}

// WorkersAction is `workers INST = N`: retune the instance's parallel
// fan-out width on the live stream.
type WorkersAction struct {
	Inst string
	N    int
	Pos  Pos
}

// ParamAction is `param INST NAME = VALUE`: push a control-interface
// parameter (§8.2.1) to the running instance, e.g. a transcoder fidelity.
type ParamAction struct {
	Inst  string
	Name  string
	Value string
	Pos   Pos
}

func (*InsertAction) policyAction()  {}
func (*RemoveAction) policyAction()  {}
func (*WorkersAction) policyAction() {}
func (*ParamAction) policyAction()   {}

func (a *InsertAction) Position() Pos  { return a.Pos }
func (a *RemoveAction) Position() Pos  { return a.Pos }
func (a *WorkersAction) Position() Pos { return a.Pos }
func (a *ParamAction) Position() Pos   { return a.Pos }

func (a *InsertAction) String() string {
	return fmt.Sprintf("insert %s between %s and %s", a.Def, a.Producer, a.Consumer)
}
func (a *RemoveAction) String() string { return "remove " + a.Inst }
func (a *WorkersAction) String() string {
	return fmt.Sprintf("workers %s = %d", a.Inst, a.N)
}
func (a *ParamAction) String() string {
	return fmt.Sprintf("param %s %s = %s", a.Inst, a.Name, formatParamValue(a.Value))
}

func formatParamValue(v string) string {
	if v == "" {
		return `""`
	}
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return v
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if !(isIdentCont(c) || (c == '-' && i > 0 && i+1 < len(v))) {
			return strconv.Quote(v)
		}
	}
	if !isIdentStart(v[0]) {
		return strconv.Quote(v)
	}
	return v
}

// PolicyRule is one `when (cond) [sustain N] [cooldown N] -> action;` rule.
// ID is assigned by the parser ("rule-1", "rule-2", ... in declaration
// order within the stream); Sustain and Cooldown are zero when the script
// leaves them to the engine defaults.
type PolicyRule struct {
	ID       string
	Cond     PolicyCond
	Sustain  int
	Cooldown int
	Action   PolicyAction
	Pos      Pos
}

// String renders the rule in source form (without the trailing semicolon);
// Format-stability and duplicate detection both rely on it.
func (r *PolicyRule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "when (%s)", r.Cond)
	if r.Sustain > 0 {
		fmt.Fprintf(&b, " sustain %d", r.Sustain)
	}
	if r.Cooldown > 0 {
		fmt.Fprintf(&b, " cooldown %d", r.Cooldown)
	}
	b.WriteString(" -> ")
	b.WriteString(r.Action.String())
	return b.String()
}

// parseWhen disambiguates the two `when` forms after `when ( IDENT`: a
// closing paren means the Figure 4-5 event block, a comparison operator
// means a policy rule. Exactly one of the results is non-nil.
func (p *Parser) parseWhen() (*WhenBlock, *PolicyRule, error) {
	kw, _ := p.expect(TokWhen)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, nil, err
	}
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, nil, err
	}
	switch p.cur().Kind {
	case TokRParen:
		w, err := p.parseWhenBlockBody(kw, id)
		return w, nil, err
	case TokLt, TokLe, TokGt, TokGe:
		r, err := p.parsePolicyRule(kw, id)
		return nil, r, err
	default:
		return nil, nil, errf(p.cur().Pos,
			"expected ')' (event block) or a comparison operator (policy rule) after when (%s, found %s",
			id.Text, p.cur())
	}
}

// parsePolicyRule parses the remainder of a policy rule after
// `when ( SIGNAL`, with the comparison operator as the current token.
func (p *Parser) parsePolicyRule(kw, sig Token) (*PolicyRule, error) {
	if !KnownPolicySignal(sig.Text) {
		return nil, errf(sig.Pos, "unknown policy signal %q (known: %s)",
			sig.Text, strings.Join(PolicySignals(), ", "))
	}
	var op CmpOp
	switch p.next().Kind {
	case TokLt:
		op = CmpLt
	case TokLe:
		op = CmpLe
	case TokGt:
		op = CmpGt
	case TokGe:
		op = CmpGe
	}
	num, err := p.expect(TokNumber)
	if err != nil {
		return nil, err
	}
	threshold, err := strconv.ParseInt(num.Text, 10, 64)
	if err != nil {
		return nil, errf(num.Pos, "invalid number %q", num.Text)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	r := &PolicyRule{
		Cond: PolicyCond{Signal: sig.Text, Op: op, Value: threshold, Pos: sig.Pos},
		Pos:  kw.Pos,
	}
	// Optional hysteresis clauses, in fixed order: sustain before cooldown.
	if p.acceptWord("sustain") {
		if r.Sustain, err = p.parsePositiveCount("sustain"); err != nil {
			return nil, err
		}
	}
	if p.acceptWord("cooldown") {
		if r.Cooldown, err = p.parsePositiveCount("cooldown"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokArrow); err != nil {
		return nil, err
	}
	if r.Action, err = p.parsePolicyAction(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return r, nil
}

// acceptWord consumes the current token when it is the given contextual
// identifier. Action and clause words (sustain, cooldown, insert, between,
// and, remove, workers, param) are deliberately not keywords, so scripts
// may keep using them as ordinary names.
func (p *Parser) acceptWord(word string) bool {
	if t := p.cur(); t.Kind == TokIdent && strings.ToLower(t.Text) == word {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectWord(word string) (Token, error) {
	if t := p.cur(); t.Kind == TokIdent && strings.ToLower(t.Text) == word {
		return p.next(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected '%s', found %s", word, p.cur())
}

func (p *Parser) parsePositiveCount(clause string) (int, error) {
	num, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(num.Text)
	if err != nil || n < 1 {
		return 0, errf(num.Pos, "%s must be a number >= 1", clause)
	}
	return n, nil
}

func (p *Parser) parsePolicyAction() (PolicyAction, error) {
	verb, err := p.expect(TokIdent)
	if err != nil {
		return nil, errf(p.cur().Pos, "expected policy action (insert, remove, workers, param), found %s", p.cur())
	}
	switch strings.ToLower(verb.Text) {
	case "insert":
		def, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expectWord("between"); err != nil {
			return nil, err
		}
		prod, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expectWord("and"); err != nil {
			return nil, err
		}
		cons, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &InsertAction{Def: def.Text, Producer: prod.Text, Consumer: cons.Text, Pos: verb.Pos}, nil
	case "remove":
		inst, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &RemoveAction{Inst: inst.Text, Pos: verb.Pos}, nil
	case "workers":
		inst, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEquals); err != nil {
			return nil, err
		}
		n, err := p.parsePositiveCount("workers")
		if err != nil {
			return nil, err
		}
		return &WorkersAction{Inst: inst.Text, N: n, Pos: verb.Pos}, nil
	case "param":
		inst, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEquals); err != nil {
			return nil, err
		}
		var value string
		switch t := p.cur(); t.Kind {
		case TokIdent, TokString, TokNumber:
			value = t.Text
			p.next()
		default:
			return nil, errf(t.Pos, "expected parameter value, found %s", t)
		}
		return &ParamAction{Inst: inst.Text, Name: name.Text, Value: value, Pos: verb.Pos}, nil
	default:
		return nil, errf(verb.Pos, "unknown policy action %q (known: insert, remove, workers, param)", verb.Text)
	}
}
