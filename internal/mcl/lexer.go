package mcl

import (
	"strings"
)

// Lexer tokenizes MCL source. Identifiers may contain letters, digits,
// underscores and interior hyphens (so the primitives `new-streamlet` etc.
// lex as single tokens and are then keyword-matched); `//` starts a line
// comment and `/* ... */` a block comment.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream (terminated by
// a TokEOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}

	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(start), nil
	case isDigit(c):
		return lx.lexNumber(start), nil
	case c == '"':
		return lx.lexString(start)
	}

	lx.advance()
	var kind TokenKind
	switch c {
	case '{':
		kind = TokLBrace
	case '}':
		kind = TokRBrace
	case '(':
		kind = TokLParen
	case ')':
		kind = TokRParen
	case ';':
		kind = TokSemicolon
	case ':':
		kind = TokColon
	case ',':
		kind = TokComma
	case '.':
		kind = TokDot
	case '=':
		kind = TokEquals
	case '/':
		kind = TokSlash
	case '*':
		kind = TokStar
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: start}, nil
		}
		kind = TokLt
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: start}, nil
		}
		kind = TokGt
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokArrow, Text: "->", Pos: start}, nil
		}
		return Token{}, errf(start, "unexpected character %q", string(c))
	default:
		return Token{}, errf(start, "unexpected character %q", string(c))
	}
	return Token{Kind: kind, Text: string(c), Pos: start}, nil
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*' && !lx.afterTypeChar():
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// afterTypeChar reports whether the current offset directly follows an
// identifier character or '*' with no intervening space. In that position a
// "/*" sequence is the slash of a media-type expression such as "image/*"
// or "*/*", not the start of a block comment.
func (lx *Lexer) afterTypeChar() bool {
	if lx.off == 0 {
		return false
	}
	p := lx.src[lx.off-1]
	return isIdentCont(p) || p == '*'
}

func (lx *Lexer) lexIdent(start Pos) Token {
	var b strings.Builder
	for lx.off < len(lx.src) {
		c := lx.peek()
		if isIdentCont(c) {
			b.WriteByte(lx.advance())
			continue
		}
		// Interior hyphen followed by an identifier character keeps the
		// token going: new-streamlet, remove-channel, x-raster.
		if c == '-' && isIdentCont(lx.peekAt(1)) {
			b.WriteByte(lx.advance())
			continue
		}
		break
	}
	text := b.String()
	if kw, ok := keywords[strings.ToLower(text)]; ok {
		return Token{Kind: kw, Text: text, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (lx *Lexer) lexNumber(start Pos) Token {
	var b strings.Builder
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		b.WriteByte(lx.advance())
	}
	return Token{Kind: TokNumber, Text: b.String(), Pos: start}
}

func (lx *Lexer) lexString(start Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for lx.off < len(lx.src) {
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		case '\n':
			return Token{}, errf(start, "newline in string literal")
		case '\\':
			if lx.off >= len(lx.src) {
				return Token{}, errf(start, "unterminated string literal")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			default:
				return Token{}, errf(start, "unknown escape \\%c", esc)
			}
		default:
			b.WriteByte(c)
		}
	}
	return Token{}, errf(start, "unterminated string literal")
}
