package mcl

import (
	"strings"
	"testing"
)

func TestParseDistillationScript(t *testing.T) {
	f, err := Parse(distillationScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Streamlets) != 7 {
		t.Errorf("streamlets = %d, want 7", len(f.Streamlets))
	}
	if len(f.Channels) != 1 {
		t.Errorf("channels = %d, want 1", len(f.Channels))
	}
	if len(f.Streams) != 1 {
		t.Errorf("streams = %d, want 1", len(f.Streams))
	}

	sw, ok := f.Streamlet("switch")
	if !ok {
		t.Fatal("streamlet switch missing")
	}
	if sw.Kind != Stateless {
		t.Errorf("switch kind = %v", sw.Kind)
	}
	if sw.Library != "general/switch" {
		t.Errorf("switch library = %q", sw.Library)
	}
	if len(sw.Ports) != 3 {
		t.Fatalf("switch ports = %d", len(sw.Ports))
	}
	pi, ok := sw.Port("pi")
	if !ok || pi.Dir != PortIn || pi.Type.String() != "multipart/mixed" {
		t.Errorf("switch.pi = %+v", pi)
	}
	po1, _ := sw.Port("po1")
	if po1.Dir != PortOut || po1.Type.String() != "image/gif" {
		t.Errorf("switch.po1 = %+v", po1)
	}

	mg, _ := f.Streamlet("merge")
	if mg.Kind != Stateful {
		t.Errorf("merge kind = %v", mg.Kind)
	}

	ch, ok := f.Channel("largeBufferChan")
	if !ok {
		t.Fatal("channel missing")
	}
	if ch.Mode != Async || ch.Category != CatBK || ch.BufferKB != 1024 {
		t.Errorf("channel attrs = %v %v %d", ch.Mode, ch.Category, ch.BufferKB)
	}
	if ch.In().Name != "cin" || ch.Out().Name != "cout" {
		t.Errorf("channel ports: in=%q out=%q", ch.In().Name, ch.Out().Name)
	}

	app, _ := f.Stream("streamApp")
	if len(app.Body) != 13 {
		t.Errorf("stream body stmts = %d, want 13", len(app.Body))
	}
	if len(app.Whens) != 2 {
		t.Fatalf("whens = %d", len(app.Whens))
	}
	if app.Whens[0].Event != "LOW_ENERGY" || app.Whens[1].Event != "LOW_GRAYS" {
		t.Errorf("when events = %q %q", app.Whens[0].Event, app.Whens[1].Event)
	}
	if len(app.Whens[1].Body) != 3 {
		t.Errorf("LOW_GRAYS actions = %d", len(app.Whens[1].Body))
	}
}

func TestParseStatementShapes(t *testing.T) {
	src := `
stream s {
	streamlet a, b = new-streamlet (def);
	channel c1 = new-channel (chdef);
	connect (a.o, b.i, c1);
	connect (a.o2, b.i2);
	disconnect (a.o, b.i);
	disconnectall (a);
	remove-streamlet (a);
	remove-channel (c1);
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Streams[0].Body
	if len(body) != 8 {
		t.Fatalf("stmts = %d", len(body))
	}
	ns := body[0].(*NewStreamletStmt)
	if len(ns.Vars) != 2 || ns.Vars[1] != "b" || ns.Def != "def" {
		t.Errorf("new-streamlet = %+v", ns)
	}
	cs := body[2].(*ConnectStmt)
	if cs.From.String() != "a.o" || cs.To.String() != "b.i" || cs.Channel != "c1" {
		t.Errorf("connect = %+v", cs)
	}
	cs2 := body[3].(*ConnectStmt)
	if cs2.Channel != "" {
		t.Errorf("implicit connect has channel %q", cs2.Channel)
	}
	if _, ok := body[4].(*DisconnectStmt); !ok {
		t.Error("stmt 4 not disconnect")
	}
	if da, ok := body[5].(*DisconnectAllStmt); !ok || da.Var != "a" {
		t.Error("stmt 5 not disconnectall(a)")
	}
	if _, ok := body[6].(*RemoveStreamletStmt); !ok {
		t.Error("stmt 6 not remove-streamlet")
	}
	if _, ok := body[7].(*RemoveChannelStmt); !ok {
		t.Error("stmt 7 not remove-channel")
	}
}

func TestParseNewChannelSpaceSpelling(t *testing.T) {
	// Figure 4-8 writes `new channel (...)` with a space.
	src := `stream s { channel c1, c2, c3 = new channel (chdef); }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nc := f.Streams[0].Body[0].(*NewChannelStmt)
	if len(nc.Vars) != 3 || nc.Def != "chdef" {
		t.Errorf("new channel = %+v", nc)
	}
}

func TestParseMainStream(t *testing.T) {
	f, err := Parse(`stream a { } main stream b { } stream c { }`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := f.MainStream()
	if !ok || m.Name != "b" {
		t.Errorf("main = %v, %v", m, ok)
	}
}

func TestParseSingleStreamIsImplicitMain(t *testing.T) {
	f, err := Parse(`stream only { }`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := f.MainStream()
	if !ok || m.Name != "only" {
		t.Error("single stream should be implicit main")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"duplicate streamlet", `streamlet a { } streamlet a { }`, "duplicate"},
		{"duplicate port", `streamlet a { port { in p : text; in p : text; } }`, "duplicate port"},
		{"channel two ins", `channel c { port { in a : text; in b : text; } }`, "exactly one in"},
		{"channel no ports", `channel c { }`, "exactly one in"},
		{"two mains", `main stream a { } main stream b { }`, "multiple streams labeled main"},
		{"bad streamlet kind", `streamlet a { attribute { type = WEIRD; } }`, "STATELESS or STATEFUL"},
		{"bad channel category", `channel c { port { in a : text; out b : text; } attribute { category = XX; } }`, "category"},
		{"bad buffer", `channel c { port { in a : text; out b : text; } attribute { buffer = 0; } }`, "buffer"},
		{"unknown attribute", `streamlet a { attribute { color = red; } }`, "unknown streamlet attribute"},
		{"missing semicolon", `stream s { connect (a.o, b.i) }`, "expected ';'"},
		{"garbage toplevel", `wibble`, "expected declaration"},
		{"bad media type", `streamlet a { port { in p : text/; } }`, "subtype"},
		{"stream name clash with channel", `channel x { port { in a : text; out b : text; } } stream x { }`, "clashes"},
		{"duplicate stream", `stream x { } stream x { }`, "duplicate stream"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("stream s {\n  bogus-stmt;\n}")
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestChannelCategoryParsing(t *testing.T) {
	for _, n := range []string{"S", "BB", "BK", "KB", "KK"} {
		c, ok := ParseChannelCategory(n)
		if !ok || c.String() != n {
			t.Errorf("ParseChannelCategory(%q) = %v, %v", n, c, ok)
		}
	}
	if _, ok := ParseChannelCategory("ZZ"); ok {
		t.Error("bogus category parsed")
	}
}

func TestPortDirString(t *testing.T) {
	if PortIn.String() != "in" || PortOut.String() != "out" {
		t.Error("PortDir strings wrong")
	}
}
