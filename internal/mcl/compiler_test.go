package mcl

import (
	"strings"
	"testing"

	"mobigate/internal/mime"
)

func compileOK(t *testing.T, src string) *Config {
	t.Helper()
	cfg, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestCompileDistillation(t *testing.T) {
	cfg := compileOK(t, distillationScript)
	sc := cfg.Stream("streamApp")
	if sc == nil {
		t.Fatal("streamApp not compiled")
	}
	if len(sc.Instances) != 7 {
		t.Errorf("instances = %d", len(sc.Instances))
	}
	if len(sc.Channels) != 3 {
		t.Errorf("channels = %d", len(sc.Channels))
	}
	if len(sc.Connections) != 5 {
		t.Errorf("connections = %d", len(sc.Connections))
	}
	if len(sc.Whens) != 2 {
		t.Errorf("whens = %d", len(sc.Whens))
	}
	// Main: single stream is implicit main.
	if cfg.Main != "streamApp" {
		t.Errorf("main = %q", cfg.Main)
	}
	// Routing row shape.
	row := sc.Connections[0]
	if row.From.String() != "s1.po1" || row.To.String() != "s2.pi" || row.Channel != "c1" {
		t.Errorf("row 0 = %+v", row)
	}
	// Implicit channel rows have no channel variable.
	if sc.Connections[1].Channel != "" {
		t.Errorf("row 1 channel = %q", sc.Connections[1].Channel)
	}
}

func TestCompileExternalPortsDerivation(t *testing.T) {
	cfg := compileOK(t, distillationScript)
	sc := cfg.Stream("streamApp")
	var ins, outs []string
	for _, ep := range sc.ExternalPorts {
		if ep.Decl.Dir == PortIn {
			ins = append(ins, ep.Inner.String())
		} else {
			outs = append(outs, ep.Inner.String())
		}
	}
	// Unsatisfied sinks: s1.pi (entry), s3.pi (only connected on LOW_GRAYS),
	// s4.pi (only on LOW_ENERGY).
	wantIns := []string{"s1.pi", "s3.pi", "s4.pi"}
	if strings.Join(ins, " ") != strings.Join(wantIns, " ") {
		t.Errorf("external ins = %v, want %v", ins, wantIns)
	}
	// Unsatisfied sources: s3.po and s7.po.
	wantOuts := []string{"s3.po", "s7.po"}
	if strings.Join(outs, " ") != strings.Join(wantOuts, " ") {
		t.Errorf("external outs = %v, want %v", outs, wantOuts)
	}
	// Exported names are flattened.
	if sc.ExternalPorts[0].Decl.Name != "s1_pi" {
		t.Errorf("flattened name = %q", sc.ExternalPorts[0].Decl.Name)
	}
}

func TestCompileRecursiveComposition(t *testing.T) {
	cfg := compileOK(t, recursiveScript+`
streamlet streamApp {
	port {
		in  pi : multipart/mixed;
		out po : multipart/mixed;
	}
	attribute {
		type = STATEFUL;
		library = "general/streamApp";
		description = "match the stream object streamApp to a streamlet";
	}
}
`)
	if cfg.Main != "compositeStream" {
		t.Errorf("main = %q", cfg.Main)
	}
	sc := cfg.Stream("compositeStream")
	t2 := sc.Instance("t2")
	if t2 == nil {
		t.Fatal("t2 missing")
	}
	if t2.Kind != KindComposite || t2.Stream != "streamApp" {
		t.Errorf("t2 = %+v", t2)
	}
	// Declared wrapper port pi must map to the inner entry s1.pi; po to the
	// only compatible multipart source, s7.po.
	if got := t2.PortMap["pi"].String(); got != "s1.pi" {
		t.Errorf("pi maps to %s", got)
	}
	if got := t2.PortMap["po"].String(); got != "s7.po" {
		t.Errorf("po maps to %s", got)
	}
}

func TestCompileWithoutWrapperRequiresFlattenedNames(t *testing.T) {
	// Reusing a stream without a wrapper declaration exports flattened
	// names (s1_pi), so the Figure 4-9 spelling t2.pi must be rejected.
	_, err := Compile(recursiveScript, nil)
	if err == nil || !strings.Contains(err.Error(), "no port") {
		t.Errorf("want missing-port error, got %v", err)
	}
}

func TestCompileAutoDerivedCompositeNames(t *testing.T) {
	src := `
streamlet a {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "x/a"; }
}
stream inner {
	streamlet s1 = new-streamlet (a);
	streamlet s2 = new-streamlet (a);
	connect (s1.po, s2.pi);
}
main stream outer {
	streamlet u = new-streamlet (a);
	streamlet v = new-streamlet (inner);
	connect (u.po, v.s1_pi);
}
`
	cfg := compileOK(t, src)
	v := cfg.Stream("outer").Instance("v")
	if v.Kind != KindComposite {
		t.Fatalf("v kind = %v", v.Kind)
	}
	if got := v.PortMap["s1_pi"].String(); got != "s1.pi" {
		t.Errorf("s1_pi maps to %s", got)
	}
	if got := v.PortMap["s2_po"].String(); got != "s2.po" {
		t.Errorf("s2_po maps to %s", got)
	}
}

func TestCompileRecursionCycleDetected(t *testing.T) {
	src := `
streamlet base { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet wrapA { port { in pi : text; out po : text; } attribute { library = "mcl:a"; } }
streamlet wrapB { port { in pi : text; out po : text; } attribute { library = "mcl:b"; } }
stream a { streamlet s = new-streamlet (wrapB); }
stream b { streamlet s = new-streamlet (wrapA); }
`
	_, err := Compile(src, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want recursion cycle error, got %v", err)
	}
}

func TestCompileTypeErrors(t *testing.T) {
	defs := `
streamlet textsrc { port { out po : text/plain; } attribute { library = "x"; } }
streamlet textsink { port { in pi : text; } attribute { library = "x"; } }
streamlet imgsink { port { in pi : image/gif; } attribute { library = "x"; } }
streamlet richsink { port { in pi : text/richtext; } attribute { library = "x"; } }
streamlet both { port { in pi : text; out po : text; } attribute { library = "x"; } }
channel imgchan { port { in cin : image/*; out cout : image/*; } }
`
	cases := []struct {
		name, body, wantSub string
	}{
		{"source not subtype of sink", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (imgsink);
			connect (a.po, b.pi);`, "type mismatch"},
		{"specialized sink rejects general source", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (richsink);
			connect (a.po, b.pi);`, "type mismatch"},
		{"source incompatible with channel input", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			channel c = new-channel (imgchan);
			connect (a.po, b.pi, c);`, "channel c input"},
		{"unknown channel", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			connect (a.po, b.pi, nosuch);`, "unknown channel instance"},
		{"unknown def", `streamlet a = new-streamlet (nosuch);`, "unknown streamlet definition"},
		{"unknown port", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			connect (a.nope, b.pi);`, "no port"},
		{"wrong direction", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			connect (b.pi, a.po);`, "in port"},
		{"self connection", `
			streamlet a = new-streamlet (both);
			connect (a.po, a.pi);`, "itself"},
		{"double source use", `
			streamlet a = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			streamlet b2 = new-streamlet (textsink);
			connect (a.po, b.pi);
			connect (a.po, b2.pi);`, "already connected"},
		{"double sink use", `
			streamlet a = new-streamlet (textsrc);
			streamlet a2 = new-streamlet (textsrc);
			streamlet b = new-streamlet (textsink);
			connect (a.po, b.pi);
			connect (a2.po, b.pi);`, "already connected"},
		{"duplicate variable", `
			streamlet a = new-streamlet (textsrc);
			streamlet a = new-streamlet (textsrc);`, "duplicate instance variable"},
		{"remove unknown", `remove-streamlet (ghost);`, "unknown streamlet instance"},
	}
	for _, c := range cases {
		src := defs + "stream s {" + c.body + "}"
		_, err := Compile(src, nil)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestCompileSubtypeThroughChannel(t *testing.T) {
	// text/richtext source through a text channel into a text sink: legal,
	// since text/richtext ⊑ text ⊑ text (§4.4.1's PostScript-to-Text →
	// Text Compressor example).
	src := `
streamlet ps2text { port { in pi : application/postscript; out po : text/richtext; } attribute { library = "x"; } }
streamlet compress { port { in pi : text; out po : text; } attribute { library = "x"; } }
channel textchan { port { in cin : text; out cout : text; } }
stream s {
	streamlet a = new-streamlet (ps2text);
	streamlet b = new-streamlet (compress);
	channel c = new-channel (textchan);
	connect (a.po, b.pi, c);
}
`
	compileOK(t, src)
}

func TestCompileRegistryEdgeUsed(t *testing.T) {
	reg := mime.NewRegistry()
	if err := reg.AddSubtype(mime.MustParse("application/x-note"), mime.MustParse("text/plain")); err != nil {
		t.Fatal(err)
	}
	src := `
streamlet notesrc { port { out po : application/x-note; } attribute { library = "x"; } }
streamlet textsink { port { in pi : text/plain; } attribute { library = "x"; } }
stream s {
	streamlet a = new-streamlet (notesrc);
	streamlet b = new-streamlet (textsink);
	connect (a.po, b.pi);
}
`
	if _, err := Compile(src, reg); err != nil {
		t.Errorf("registry edge not honored: %v", err)
	}
	if _, err := Compile(src, mime.NewRegistry()); err == nil {
		t.Error("compile without edge should fail")
	}
}

func TestCompileWhenActionsValidated(t *testing.T) {
	src := `
streamlet a { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (a);
	streamlet s2 = new-streamlet (a);
	when (LOW_BANDWIDTH) {
		connect (s1.po, ghost.pi);
	}
}
`
	_, err := Compile(src, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown streamlet instance") {
		t.Errorf("when action not validated: %v", err)
	}
}

func TestCompileWhenAllowsReconnectOfOccupiedPort(t *testing.T) {
	// Occupancy is a runtime property during reconfiguration; when-blocks
	// may reference ports that are connected initially (they disconnect
	// first at runtime, Figure 4-8 LOW_GRAYS).
	cfg := compileOK(t, distillationScript)
	if len(cfg.Stream("streamApp").Whens[1].Actions) != 3 {
		t.Error("LOW_GRAYS actions missing")
	}
}

func TestCompileCompositeWrapperIncompatible(t *testing.T) {
	src := `
streamlet a { port { in pi : image/gif; out po : image/gif; } attribute { library = "x"; } }
stream inner {
	streamlet s1 = new-streamlet (a);
}
streamlet inner2 { port { in pi : text; out po : text; } attribute { library = "mcl:inner"; } }
main stream outer {
	streamlet v = new-streamlet (inner2);
}
`
	_, err := Compile(src, nil)
	if err == nil || !strings.Contains(err.Error(), "compatible") {
		t.Errorf("incompatible wrapper accepted: %v", err)
	}
}

func TestCompileEmptyFileAndLibraryOnly(t *testing.T) {
	cfg := compileOK(t, `streamlet a { port { in pi : text; } attribute { library = "x"; } }`)
	if cfg.Main != "" || len(cfg.Streams) != 0 {
		t.Errorf("library-only compile: %+v", cfg)
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := compileOK(t, distillationScript)
	if cfg.MainStream() == nil {
		t.Error("MainStream nil")
	}
	if cfg.Stream("nope") != nil {
		t.Error("unknown stream not nil")
	}
	empty := &Config{}
	if empty.MainStream() != nil {
		t.Error("empty config MainStream not nil")
	}
}

func TestMergeFilesAndCompileSources(t *testing.T) {
	lib := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
`
	app := `
main stream app {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	connect (a.po, b.pi);
}
`
	cfg, err := CompileSources(map[string]string{"lib.mcl": lib, "app.mcl": app}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Main != "app" || len(cfg.Stream("app").Instances) != 2 {
		t.Errorf("merged compile wrong: %+v", cfg.Main)
	}
	// The app alone must not compile (definition missing).
	if _, err := Compile(app, nil); err == nil {
		t.Error("app compiled without its library")
	}
	// Cross-file duplicate names are rejected.
	if _, err := CompileSources(map[string]string{"a.mcl": lib, "b.mcl": lib}, nil); err == nil {
		t.Error("duplicate cross-file definitions accepted")
	}
	// Parse errors carry the file name.
	if _, err := CompileSources(map[string]string{"bad.mcl": "wibble"}, nil); err == nil ||
		!strings.Contains(err.Error(), "bad.mcl") {
		t.Errorf("error lacks file name: %v", err)
	}
}
