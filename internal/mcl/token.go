// Package mcl implements the MobiGATE Coordination Language: lexer, parser,
// and compiler (thesis chapter 4). MCL describes applications as streamlets
// connected by typed channels inside streams; the compiler turns a script
// into the configuration tables the Coordination Manager executes (§3.3.6)
// and performs the MIME-based compatibility checks of §4.4.1.
package mcl

import "fmt"

// TokenKind enumerates MCL token classes.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString

	// Punctuation.
	TokLBrace    // {
	TokRBrace    // }
	TokLParen    // (
	TokRParen    // )
	TokSemicolon // ;
	TokColon     // :
	TokComma     // ,
	TokDot       // .
	TokEquals    // =
	TokSlash     // /
	TokStar      // *
	TokArrow     // ->
	TokLt        // <
	TokGt        // >
	TokLe        // <=
	TokGe        // >=

	// Keywords.
	TokStreamlet
	TokChannel
	TokStream
	TokMain
	TokPort
	TokAttribute
	TokIn
	TokOut
	TokWhen
	TokConnect
	TokDisconnect
	TokDisconnectAll
	TokNewStreamlet
	TokRemoveStreamlet
	TokNewChannel
	TokRemoveChannel
)

var keywords = map[string]TokenKind{
	"streamlet":        TokStreamlet,
	"channel":          TokChannel,
	"stream":           TokStream,
	"main":             TokMain,
	"port":             TokPort,
	"attribute":        TokAttribute,
	"in":               TokIn,
	"out":              TokOut,
	"when":             TokWhen,
	"connect":          TokConnect,
	"disconnect":       TokDisconnect,
	"disconnectall":    TokDisconnectAll,
	"new-streamlet":    TokNewStreamlet,
	"remove-streamlet": TokRemoveStreamlet,
	"new-channel":      TokNewChannel,
	"remove-channel":   TokRemoveChannel,
}

var kindNames = map[TokenKind]string{
	TokEOF:             "end of file",
	TokIdent:           "identifier",
	TokNumber:          "number",
	TokString:          "string",
	TokLBrace:          "'{'",
	TokRBrace:          "'}'",
	TokLParen:          "'('",
	TokRParen:          "')'",
	TokSemicolon:       "';'",
	TokColon:           "':'",
	TokComma:           "','",
	TokDot:             "'.'",
	TokEquals:          "'='",
	TokSlash:           "'/'",
	TokStar:            "'*'",
	TokArrow:           "'->'",
	TokLt:              "'<'",
	TokGt:              "'>'",
	TokLe:              "'<='",
	TokGe:              "'>='",
	TokStreamlet:       "'streamlet'",
	TokChannel:         "'channel'",
	TokStream:          "'stream'",
	TokMain:            "'main'",
	TokPort:            "'port'",
	TokAttribute:       "'attribute'",
	TokIn:              "'in'",
	TokOut:             "'out'",
	TokWhen:            "'when'",
	TokConnect:         "'connect'",
	TokDisconnect:      "'disconnect'",
	TokDisconnectAll:   "'disconnectall'",
	TokNewStreamlet:    "'new-streamlet'",
	TokRemoveStreamlet: "'remove-streamlet'",
	TokNewChannel:      "'new-channel'",
	TokRemoveChannel:   "'remove-channel'",
}

func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a source position for error reporting.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its literal text and position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is an MCL front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("mcl:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
