package mcl

// distillationScript is the thesis's running example: the datatype-specific
// distillation application of Figures 4-6/4-7/4-8, with streamlet and
// channel descriptions plus the streamApp composition script.
const distillationScript = `
// Streamlet descriptions (Figure 4-7).
streamlet switch {
	port {
		in  pi  : multipart/mixed;
		out po1 : image/gif;
		out po2 : application/postscript;
	}
	attribute {
		type = STATELESS;
		library = "general/switch";
		description = "Dividing incoming messages based on the semantic type of the data";
	}
}

streamlet img_down_sample {
	port {
		in  pi : image/*;
		out po : image/*;
	}
	attribute {
		type = STATELESS;
		library = "image/downsample";
		description = "Lossy compression of an image by reducing the sample rate";
	}
}

streamlet map_to_16_grays {
	port {
		in  pi : image/*;
		out po : image/*;
	}
	attribute {
		type = STATELESS;
		library = "image/gray16";
	}
}

streamlet powerSaving {
	port {
		in pi : multipart/mixed;
	}
	attribute {
		type = STATEFUL;
		library = "system/powersave";
	}
}

streamlet postscript2text {
	port {
		in  pi : application/postscript;
		out po : text/richtext;
	}
	attribute {
		type = STATELESS;
		library = "text/ps2text";
	}
}

streamlet text_compress {
	port {
		in  pi : text;
		out po : text;
	}
	attribute {
		type = STATELESS;
		library = "text/compress";
	}
}

streamlet merge {
	port {
		in  pi1 : image/*;
		in  pi2 : text;
		out po  : multipart/mixed;
	}
	attribute {
		type = STATEFUL;
		library = "general/merge";
	}
}

// Channel description: a 1024-KByte channel for image traffic.
channel largeBufferChan {
	port {
		in  cin  : image/*;
		out cout : image/*;
	}
	attribute {
		type = ASYNC;
		category = BK;
		buffer = 1024;
	}
}

// Stream description (Figure 4-8).
stream streamApp {
	streamlet s1 = new-streamlet (switch);
	streamlet s2 = new-streamlet (img_down_sample);
	streamlet s3 = new-streamlet (map_to_16_grays);
	streamlet s4 = new-streamlet (powerSaving);
	streamlet s5 = new-streamlet (postscript2text);
	streamlet s6 = new-streamlet (text_compress);
	streamlet s7 = new-streamlet (merge);

	channel c1, c2, c3 = new-channel (largeBufferChan);

	connect (s1.po1, s2.pi, c1);
	connect (s1.po2, s5.pi);
	connect (s2.po, s7.pi1, c2);
	connect (s5.po, s6.pi);
	connect (s6.po, s7.pi2);

	when (LOW_ENERGY) {
		connect (s7.po, s4.pi);
	}
	when (LOW_GRAYS) {
		disconnect (s2.po, s7.pi1);
		connect (s2.po, s3.pi, c2);
		connect (s3.po, s7.pi1, c3);
	}
}
`

// recursiveScript reuses streamApp as a composite streamlet (Figure 4-9).
const recursiveScript = distillationScript + `
streamlet cache {
	port {
		in  pi : multipart/mixed;
		out po : multipart/mixed;
	}
	attribute {
		type = STATEFUL;
		library = "general/cache";
	}
}

main stream compositeStream {
	streamlet t1 = new-streamlet (cache);
	streamlet t2 = new-streamlet (streamApp);
	connect (t1.po, t2.pi);
}
`
