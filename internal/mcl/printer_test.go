package mcl

import (
	"reflect"
	"strings"
	"testing"
)

// stripPositions deep-compares two files ignoring source positions by
// comparing their canonical formatted forms.
func canon(t *testing.T, f *File) string {
	t.Helper()
	return Format(f)
}

func TestFormatRoundTrip(t *testing.T) {
	f1, err := Parse(distillationScript)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Format(f1)
	f2, err := Parse(src2)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, src2)
	}
	if canon(t, f1) != canon(t, f2) {
		t.Error("Format is not idempotent over Parse")
	}
	// Structural checks survive.
	if len(f2.Streamlets) != len(f1.Streamlets) || len(f2.Streams) != len(f1.Streams) {
		t.Error("declarations lost in round trip")
	}
	app1, _ := f1.Stream("streamApp")
	app2, _ := f2.Stream("streamApp")
	if len(app2.Body) != len(app1.Body) || len(app2.Whens) != len(app1.Whens) {
		t.Error("stream statements lost in round trip")
	}
}

func TestFormatRoundTripRecursive(t *testing.T) {
	f1, err := Parse(recursiveScript)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(Format(f1))
	if err != nil {
		t.Fatal(err)
	}
	if canon(t, f1) != canon(t, f2) {
		t.Error("recursive script not stable under format")
	}
	// Both compile identically.
	if _, err := CompileFile(f2, nil); err == nil {
		t.Error("recursive script without wrapper should fail identically after format")
	}
}

func TestFormatQuoting(t *testing.T) {
	src := `streamlet s { attribute { description = "has \"quotes\" and \n newline"; library = "x"; } }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("quoted output does not parse: %v\n%s", err, out)
	}
	if f2.Streamlets[0].Description != f.Streamlets[0].Description {
		t.Errorf("description mangled: %q vs %q", f2.Streamlets[0].Description, f.Streamlets[0].Description)
	}
}

func TestFormatCompilesEquivalently(t *testing.T) {
	cfg1, err := Compile(distillationScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Parse(distillationScript)
	cfg2, err := Compile(Format(f), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc1, sc2 := cfg1.Stream("streamApp"), cfg2.Stream("streamApp")
	if len(sc1.Connections) != len(sc2.Connections) {
		t.Fatal("connection counts differ")
	}
	for i := range sc1.Connections {
		a, b := sc1.Connections[i], sc2.Connections[i]
		if a.From.String() != b.From.String() || a.To.String() != b.To.String() || a.Channel != b.Channel {
			t.Errorf("row %d differs: %v vs %v", i, a, b)
		}
	}
	if !reflect.DeepEqual(whenEvents(sc1), whenEvents(sc2)) {
		t.Error("when events differ")
	}
}

func whenEvents(sc *StreamConfig) []string {
	var out []string
	for _, w := range sc.Whens {
		out = append(out, w.Event)
	}
	return out
}

func TestFormatMainKeyword(t *testing.T) {
	f, err := Parse(`stream a { } main stream b { }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "main stream b") {
		t.Errorf("main keyword lost:\n%s", out)
	}
	if strings.Contains(out, "main stream a") {
		t.Error("main keyword added to non-main stream")
	}
}
