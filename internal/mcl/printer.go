package mcl

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a parsed file back to canonical MCL source. The output
// parses to an equivalent file (Format ∘ Parse is idempotent), making it
// usable as a formatter for MCL scripts.
func Format(f *File) string {
	var b strings.Builder
	p := printer{b: &b}
	for i, d := range f.Streamlets {
		if i > 0 {
			b.WriteByte('\n')
		}
		p.streamlet(d)
	}
	for i, d := range f.Channels {
		if i > 0 || len(f.Streamlets) > 0 {
			b.WriteByte('\n')
		}
		p.channel(d)
	}
	for i, d := range f.Streams {
		if i > 0 || len(f.Streamlets)+len(f.Channels) > 0 {
			b.WriteByte('\n')
		}
		p.stream(d)
	}
	return b.String()
}

type printer struct {
	b *strings.Builder
}

func (p printer) linef(depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		p.b.WriteByte('\t')
	}
	fmt.Fprintf(p.b, format, args...)
	p.b.WriteByte('\n')
}

func quote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	return `"` + s + `"`
}

func (p printer) ports(depth int, ports []PortDecl) {
	if len(ports) == 0 {
		return
	}
	p.linef(depth, "port {")
	for _, pt := range ports {
		p.linef(depth+1, "%s %s : %s;", pt.Dir, pt.Name, pt.Type.Base())
	}
	p.linef(depth, "}")
}

func (p printer) streamlet(d *StreamletDecl) {
	p.linef(0, "streamlet %s {", d.Name)
	p.ports(1, d.Ports)
	p.linef(1, "attribute {")
	p.linef(2, "type = %s;", d.Kind)
	if d.Library != "" {
		p.linef(2, "library = %s;", quote(d.Library))
	}
	if d.Description != "" {
		p.linef(2, "description = %s;", quote(d.Description))
	}
	if d.Workers > 1 {
		p.linef(2, "workers = %d;", d.Workers)
	}
	if d.Batch > 1 {
		p.linef(2, "batch = %d;", d.Batch)
	}
	if d.Fuse != FuseDefault {
		p.linef(2, "fuse = %s;", d.Fuse)
	}
	keys := make([]string, 0, len(d.Params))
	for k := range d.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.linef(2, "param-%s = %s;", k, quote(d.Params[k]))
	}
	p.linef(1, "}")
	p.linef(0, "}")
}

func (p printer) channel(d *ChannelDecl) {
	p.linef(0, "channel %s {", d.Name)
	p.ports(1, d.Ports)
	p.linef(1, "attribute {")
	p.linef(2, "type = %s;", d.Mode)
	p.linef(2, "category = %s;", d.Category)
	p.linef(2, "buffer = %d;", d.BufferKB)
	p.linef(1, "}")
	p.linef(0, "}")
}

func (p printer) stream(d *StreamDecl) {
	kw := "stream"
	if d.Main {
		kw = "main stream"
	}
	p.linef(0, "%s %s {", kw, d.Name)
	for _, s := range d.Body {
		p.stmt(1, s)
	}
	for _, w := range d.Whens {
		p.linef(1, "when (%s) {", w.Event)
		for _, s := range w.Body {
			p.stmt(2, s)
		}
		p.linef(1, "}")
	}
	for _, r := range d.Policies {
		p.linef(1, "%s;", r)
	}
	p.linef(0, "}")
}

func (p printer) stmt(depth int, s Stmt) {
	switch st := s.(type) {
	case *NewStreamletStmt:
		p.linef(depth, "streamlet %s = new-streamlet (%s);", strings.Join(st.Vars, ", "), st.Def)
	case *NewChannelStmt:
		p.linef(depth, "channel %s = new-channel (%s);", strings.Join(st.Vars, ", "), st.Def)
	case *RemoveStreamletStmt:
		p.linef(depth, "remove-streamlet (%s);", st.Var)
	case *RemoveChannelStmt:
		p.linef(depth, "remove-channel (%s);", st.Var)
	case *ConnectStmt:
		if st.Channel != "" {
			p.linef(depth, "connect (%s, %s, %s);", st.From, st.To, st.Channel)
		} else {
			p.linef(depth, "connect (%s, %s);", st.From, st.To)
		}
	case *DisconnectStmt:
		p.linef(depth, "disconnect (%s, %s);", st.From, st.To)
	case *DisconnectAllStmt:
		p.linef(depth, "disconnectall (%s);", st.Var)
	default:
		p.linef(depth, "/* unknown statement %T */", s)
	}
}
