package mcl

import (
	"fmt"
	"sort"
	"strings"

	"mobigate/internal/mime"
)

// DefaultBufferKB is the buffer of the implicit channel the system creates
// for a two-argument connect(...): asynchronous, BK, 100 KBytes (§4.2.3).
const DefaultBufferKB = 100

// CompositeLibraryPrefix marks a streamlet declaration as being implemented
// by an MCL stream (recursive composition, §4.4.2): library = "mcl:name".
const CompositeLibraryPrefix = "mcl:"

// InstanceKind distinguishes native streamlets from composite (stream-
// backed) streamlets.
type InstanceKind int

const (
	// KindStreamlet instantiates a code-level (native) streamlet.
	KindStreamlet InstanceKind = iota
	// KindComposite instantiates a stream reused as a streamlet (§4.4.2).
	KindComposite
)

func (k InstanceKind) String() string {
	if k == KindComposite {
		return "composite"
	}
	return "streamlet"
}

// Instance is one streamlet instance inside a stream configuration.
type Instance struct {
	Var  string
	Def  string       // definition name as written in the script
	Kind InstanceKind //
	// Decl is the effective interface: the streamlet declaration itself,
	// or, for composites, a synthesized declaration whose ports are the
	// inner ports left unsatisfied by inner connections (§5.1.4).
	Decl *StreamletDecl
	// Stream is the backing stream name for composites ("" otherwise).
	Stream string
	// PortMap maps each interface port name of a composite to the inner
	// instance port it stands for (nil for native streamlets).
	PortMap map[string]PortRef
	Pos     Pos
}

// ChannelInstance is one channel instance inside a stream configuration.
type ChannelInstance struct {
	Var      string
	Decl     *ChannelDecl
	Implicit bool // created by a two-argument connect
	Pos      Pos
}

// Connection is a routing-table row: producer port → channel → consumer
// port. It is the unit the Coordination Manager uses to route messages.
type Connection struct {
	From    PortRef
	To      PortRef
	Channel string
	Pos     Pos
}

// WhenConfig is a compiled event reaction.
type WhenConfig struct {
	Event   string
	Actions []Stmt
}

// PolicyConfig is a compiled when-policy rule: the parsed rule plus the
// resolved pieces its action needs at runtime. The autopilot
// (internal/adapt) consumes these.
type PolicyConfig struct {
	// ID is the rule id within its stream ("rule-1", ...).
	ID   string
	Rule *PolicyRule
	// InsertDecl/InsertIn/InsertOut are resolved for insert actions: the
	// streamlet declaration to instantiate and its single in/out port names.
	InsertDecl *StreamletDecl
	InsertIn   string
	InsertOut  string
}

// ExternalPort is an inner port left unsatisfied by the stream's initial
// connections and therefore exported on the composite interface (§5.1.4).
type ExternalPort struct {
	// Decl carries the exported name (inner "inst.port" flattened to
	// "inst_port") and the port's direction and type.
	Decl PortDecl
	// Inner is the inner instance port this external port stands for.
	Inner PortRef
}

// StreamConfig is the configuration table derived from one stream
// description: meta-information on streamlet composition, message type
// constraints, port connections and routing (§3.3.1).
type StreamConfig struct {
	Name      string
	Main      bool
	Instances map[string]*Instance
	Channels  map[string]*ChannelInstance
	// Connections in declaration order (the routing table).
	Connections []*Connection
	Whens       []*WhenConfig
	// Policies are the compiled autopilot rules, in declaration order.
	Policies []*PolicyConfig
	// ExternalPorts is the derived interface when this stream is reused as
	// a composite streamlet: inner ports unsatisfied by inner connections.
	ExternalPorts []ExternalPort
	// Order preserves instance declaration order for deterministic setup.
	Order []string
}

// Instance returns the named instance, or nil.
func (sc *StreamConfig) Instance(v string) *Instance { return sc.Instances[v] }

// Config is the full compiled script: all configuration tables plus the
// resolved declarations, ready for the Coordination Manager.
type Config struct {
	File     *File
	Registry *mime.Registry
	Streams  map[string]*StreamConfig
	// Main is the entry stream name ("" when the script has none, e.g. a
	// pure library of definitions).
	Main string
}

// Stream returns the named compiled stream, or nil.
func (c *Config) Stream(name string) *StreamConfig { return c.Streams[name] }

// MainStream returns the compiled entry stream, or nil.
func (c *Config) MainStream() *StreamConfig {
	if c.Main == "" {
		return nil
	}
	return c.Streams[c.Main]
}

// Compile parses and compiles src against reg (nil means the default
// registry). It performs every compile-time validation of §3.3.6/§4.4.1:
// definition resolution, port existence and direction checks, and MIME
// subtype compatibility on every connection.
func Compile(src string, reg *mime.Registry) (*Config, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(f, reg)
}

// CompileFile compiles an already-parsed file.
func CompileFile(f *File, reg *mime.Registry) (*Config, error) {
	if reg == nil {
		reg = mime.DefaultRegistry()
	}
	c := &compiler{
		file:    f,
		reg:     reg,
		cfg:     &Config{File: f, Registry: reg, Streams: make(map[string]*StreamConfig)},
		visited: make(map[string]int),
	}
	// Compile every stream; composites force dependency-order recursion.
	for _, s := range f.Streams {
		if _, err := c.compileStream(s.Name); err != nil {
			return nil, err
		}
	}
	if m, ok := f.MainStream(); ok {
		c.cfg.Main = m.Name
	}
	return c.cfg, nil
}

type compiler struct {
	file *File
	reg  *mime.Registry
	cfg  *Config
	// visited: 0 unvisited, 1 in progress (cycle detection), 2 done.
	visited map[string]int
}

func (c *compiler) compileStream(name string) (*StreamConfig, error) {
	if sc, ok := c.cfg.Streams[name]; ok {
		return sc, nil
	}
	decl, ok := c.file.Stream(name)
	if !ok {
		return nil, fmt.Errorf("mcl: unknown stream %q", name)
	}
	switch c.visited[name] {
	case 1:
		return nil, errf(decl.Pos, "recursive composition cycle through stream %q", name)
	}
	c.visited[name] = 1
	defer func() { c.visited[name] = 2 }()

	sc := &StreamConfig{
		Name:      name,
		Main:      decl.Main,
		Instances: make(map[string]*Instance),
		Channels:  make(map[string]*ChannelInstance),
	}

	for _, st := range decl.Body {
		if err := c.compileStmt(sc, st, false); err != nil {
			return nil, err
		}
	}
	for _, w := range decl.Whens {
		wc := &WhenConfig{Event: w.Event}
		for _, st := range w.Body {
			if err := c.compileStmt(sc, st, true); err != nil {
				return nil, err
			}
			wc.Actions = append(wc.Actions, st)
		}
		sc.Whens = append(sc.Whens, wc)
	}
	for _, r := range decl.Policies {
		pc, err := c.compilePolicy(sc, r)
		if err != nil {
			return nil, err
		}
		sc.Policies = append(sc.Policies, pc)
	}

	sc.ExternalPorts = deriveExternalPorts(sc)
	c.cfg.Streams[name] = sc
	return sc, nil
}

// compileStmt validates one statement in the context of sc. Statements in
// when-blocks (inWhen) are validated for name resolution and type
// compatibility but do not contribute to the initial routing table.
func (c *compiler) compileStmt(sc *StreamConfig, st Stmt, inWhen bool) error {
	switch s := st.(type) {
	case *NewStreamletStmt:
		for _, v := range s.Vars {
			inst, err := c.resolveStreamletDef(s.Def, v, s.Pos)
			if err != nil {
				return err
			}
			if err := declareVar(sc, v, s.Pos); err != nil {
				return err
			}
			sc.Instances[v] = inst
			sc.Order = append(sc.Order, v)
		}
	case *NewChannelStmt:
		decl, ok := c.file.Channel(s.Def)
		if !ok {
			return errf(s.Pos, "unknown channel definition %q", s.Def)
		}
		for _, v := range s.Vars {
			if err := declareVar(sc, v, s.Pos); err != nil {
				return err
			}
			sc.Channels[v] = &ChannelInstance{Var: v, Decl: decl, Pos: s.Pos}
		}
	case *RemoveStreamletStmt:
		if sc.Instances[s.Var] == nil {
			return errf(s.Pos, "remove-streamlet: unknown streamlet instance %q", s.Var)
		}
	case *RemoveChannelStmt:
		if sc.Channels[s.Var] == nil {
			return errf(s.Pos, "remove-channel: unknown channel instance %q", s.Var)
		}
	case *ConnectStmt:
		conn, err := c.checkConnect(sc, s)
		if err != nil {
			return err
		}
		if !inWhen {
			if err := checkPortFree(sc, s); err != nil {
				return err
			}
			sc.Connections = append(sc.Connections, conn)
		}
	case *DisconnectStmt:
		if _, err := c.resolvePort(sc, s.From, PortOut); err != nil {
			return err
		}
		if _, err := c.resolvePort(sc, s.To, PortIn); err != nil {
			return err
		}
	case *DisconnectAllStmt:
		if sc.Instances[s.Var] == nil {
			return errf(s.Pos, "disconnectall: unknown streamlet instance %q", s.Var)
		}
	default:
		return errf(st.Position(), "unsupported statement %T", st)
	}
	return nil
}

func declareVar(sc *StreamConfig, v string, pos Pos) error {
	if sc.Instances[v] != nil || sc.Channels[v] != nil {
		return errf(pos, "duplicate instance variable %q in stream %s", v, sc.Name)
	}
	return nil
}

// resolveStreamletDef resolves a new-streamlet(def): a native streamlet
// declaration; a composite wrapper declaration (its name matches a stream
// declaration, the Figure 4-9 idiom, or its library is "mcl:stream"); or a
// bare stream name (auto-derived composite interface).
func (c *compiler) resolveStreamletDef(def, v string, pos Pos) (*Instance, error) {
	if d, ok := c.file.Streamlet(def); ok {
		backing := ""
		if strings.HasPrefix(d.Library, CompositeLibraryPrefix) {
			backing = strings.TrimPrefix(d.Library, CompositeLibraryPrefix)
		} else if _, isStream := c.file.Stream(d.Name); isStream {
			backing = d.Name
		}
		if backing == "" {
			return &Instance{Var: v, Def: def, Kind: KindStreamlet, Decl: d, Pos: pos}, nil
		}
		bsc, err := c.compileStream(backing)
		if err != nil {
			return nil, errf(pos, "composite streamlet %q: %v", def, err)
		}
		pm, err := c.mapCompositeInterface(d, bsc)
		if err != nil {
			return nil, err
		}
		return &Instance{Var: v, Def: def, Kind: KindComposite, Decl: d, Stream: backing, PortMap: pm, Pos: pos}, nil
	}
	if _, ok := c.file.Stream(def); ok {
		bsc, err := c.compileStream(def)
		if err != nil {
			return nil, err
		}
		// Auto-derived wrapper: export every unsatisfied inner port.
		decl := &StreamletDecl{
			Name:        def,
			Kind:        Stateful, // a composition carries per-stream state
			Library:     CompositeLibraryPrefix + def,
			Description: "composite streamlet derived from stream " + def,
			Pos:         pos,
		}
		pm := make(map[string]PortRef, len(bsc.ExternalPorts))
		for _, ep := range bsc.ExternalPorts {
			decl.Ports = append(decl.Ports, ep.Decl)
			pm[ep.Decl.Name] = ep.Inner
		}
		return &Instance{Var: v, Def: def, Kind: KindComposite, Decl: decl, Stream: def, PortMap: pm, Pos: pos}, nil
	}
	return nil, errf(pos, "unknown streamlet definition %q", def)
}

// mapCompositeInterface binds each port the wrapper declaration exports to
// a type-compatible unsatisfied inner port of the backing stream (first
// compatible match in declaration order, each inner port used at most
// once). The wrapper may export a subset of the unsatisfied ports — inner
// ports left unbound stay private to the composition (e.g. ports only
// connected by when-block reconfigurations, like Figure 4-6's optional
// streamlets).
func (c *compiler) mapCompositeInterface(d *StreamletDecl, bsc *StreamConfig) (map[string]PortRef, error) {
	used := make(map[string]bool)
	pm := make(map[string]PortRef, len(d.Ports))
	for _, p := range d.Ports {
		found := false
		for _, ep := range bsc.ExternalPorts {
			if used[ep.Decl.Name] || ep.Decl.Dir != p.Dir {
				continue
			}
			// Inputs: data entering the declared port must be acceptable
			// at the inner sink. Outputs: data leaving the inner source
			// must conform to the declared type.
			var ok bool
			if p.Dir == PortIn {
				ok = c.reg.SubtypeOf(p.Type, ep.Decl.Type)
			} else {
				ok = c.reg.SubtypeOf(ep.Decl.Type, p.Type)
			}
			if ok {
				used[ep.Decl.Name] = true
				pm[p.Name] = ep.Inner
				found = true
				break
			}
		}
		if !found {
			return nil, errf(p.Pos,
				"composite %s: no unsatisfied %s port of stream %s is compatible with declared port %s : %s",
				d.Name, p.Dir, bsc.Name, p.Name, p.Type)
		}
	}
	return pm, nil
}

// resolvePort resolves inst.port and checks its direction.
func (c *compiler) resolvePort(sc *StreamConfig, ref PortRef, want PortDir) (PortDecl, error) {
	inst := sc.Instances[ref.Inst]
	if inst == nil {
		return PortDecl{}, errf(ref.Pos, "unknown streamlet instance %q", ref.Inst)
	}
	p, ok := inst.Decl.Port(ref.Port)
	if !ok {
		return PortDecl{}, errf(ref.Pos, "streamlet %s (%s) has no port %q", ref.Inst, inst.Def, ref.Port)
	}
	if p.Dir != want {
		return PortDecl{}, errf(ref.Pos, "port %s is an %s port; a connection needs its %s side here",
			ref, p.Dir, want)
	}
	return p, nil
}

// checkConnect validates a connect statement and returns its routing row.
// Restrictions of §4.4.1: streamlet ports connect only through channels
// (structurally guaranteed: the row always names a channel, implicit or
// explicit), and the source type must equal or specialize the sink type,
// threaded through the channel's own port types when one is given.
func (c *compiler) checkConnect(sc *StreamConfig, s *ConnectStmt) (*Connection, error) {
	from, err := c.resolvePort(sc, s.From, PortOut)
	if err != nil {
		return nil, err
	}
	to, err := c.resolvePort(sc, s.To, PortIn)
	if err != nil {
		return nil, err
	}
	if s.From.Inst == s.To.Inst {
		return nil, errf(s.Pos, "cannot connect streamlet %q to itself", s.From.Inst)
	}

	conn := &Connection{From: s.From, To: s.To, Channel: s.Channel, Pos: s.Pos}
	if s.Channel == "" {
		// Implicit default channel: the check degenerates to source ⊑ sink.
		if !c.reg.SubtypeOf(from.Type, to.Type) {
			return nil, errf(s.Pos, "type mismatch: source %s has type %s which is not a subtype of sink %s type %s",
				s.From, from.Type, s.To, to.Type)
		}
		return conn, nil
	}
	ch := sc.Channels[s.Channel]
	if ch == nil {
		return nil, errf(s.Pos, "unknown channel instance %q", s.Channel)
	}
	cin, cout := ch.Decl.In(), ch.Decl.Out()
	if !c.reg.SubtypeOf(from.Type, cin.Type) {
		return nil, errf(s.Pos, "type mismatch: source %s type %s is not a subtype of channel %s input type %s",
			s.From, from.Type, s.Channel, cin.Type)
	}
	if !c.reg.SubtypeOf(cout.Type, to.Type) {
		return nil, errf(s.Pos, "type mismatch: channel %s output type %s is not a subtype of sink %s type %s",
			s.Channel, cout.Type, s.To, to.Type)
	}
	return conn, nil
}

// checkPortFree rejects a second initial connection on the same source or
// sink port: the initial topology must be unambiguous (runtime fan-in is
// still possible through reconfiguration, tracked by the queue's
// producer/consumer counts).
func checkPortFree(sc *StreamConfig, s *ConnectStmt) error {
	for _, conn := range sc.Connections {
		if conn.From.Inst == s.From.Inst && conn.From.Port == s.From.Port {
			return errf(s.Pos, "source port %s already connected (at %s)", s.From, conn.Pos)
		}
		if conn.To.Inst == s.To.Inst && conn.To.Port == s.To.Port {
			return errf(s.Pos, "sink port %s already connected (at %s)", s.To, conn.Pos)
		}
	}
	return nil
}

// compilePolicy validates one when-policy rule against the stream's
// compiled topology and resolves what its action needs at runtime. Action
// targets may be initial instances or instances another rule's insert
// action creates (those are instantiated under their definition name).
func (c *compiler) compilePolicy(sc *StreamConfig, r *PolicyRule) (*PolicyConfig, error) {
	pc := &PolicyConfig{ID: r.ID, Rule: r}
	decl, _ := c.file.Stream(sc.Name)
	knownInst := func(inst string) bool {
		if sc.Instances[inst] != nil {
			return true
		}
		if decl != nil {
			for _, other := range decl.Policies {
				if ia, ok := other.Action.(*InsertAction); ok && ia.Def == inst {
					return true
				}
			}
		}
		return false
	}
	switch a := r.Action.(type) {
	case *InsertAction:
		d, ok := c.file.Streamlet(a.Def)
		if !ok {
			return nil, errf(a.Pos, "policy %s: unknown streamlet definition %q", r.ID, a.Def)
		}
		if strings.HasPrefix(d.Library, CompositeLibraryPrefix) {
			return nil, errf(a.Pos, "policy %s: insert requires a native streamlet, %q is a composite", r.ID, a.Def)
		}
		if _, isStream := c.file.Stream(d.Name); isStream {
			return nil, errf(a.Pos, "policy %s: insert requires a native streamlet, %q is a composite", r.ID, a.Def)
		}
		var in, out []PortDecl
		for _, p := range d.Ports {
			if p.Dir == PortIn {
				in = append(in, p)
			} else {
				out = append(out, p)
			}
		}
		if len(in) != 1 || len(out) != 1 {
			return nil, errf(a.Pos, "policy %s: insert target %q must have exactly one in and one out port", r.ID, a.Def)
		}
		if sc.Instances[a.Def] != nil {
			return nil, errf(a.Pos, "policy %s: insert would instantiate %q, which is already an instance name", r.ID, a.Def)
		}
		if sc.Instances[a.Producer] == nil {
			return nil, errf(a.Pos, "policy %s: unknown streamlet instance %q", r.ID, a.Producer)
		}
		if sc.Instances[a.Consumer] == nil {
			return nil, errf(a.Pos, "policy %s: unknown streamlet instance %q", r.ID, a.Consumer)
		}
		// When the initial topology already carries the producer→consumer
		// connection the insert will splice, thread the §4.4.1 subtype
		// check through the inserted streamlet's ports.
		for _, conn := range sc.Connections {
			if conn.From.Inst != a.Producer || conn.To.Inst != a.Consumer {
				continue
			}
			from, err := c.resolvePort(sc, conn.From, PortOut)
			if err != nil {
				return nil, err
			}
			to, err := c.resolvePort(sc, conn.To, PortIn)
			if err != nil {
				return nil, err
			}
			if !c.reg.SubtypeOf(from.Type, in[0].Type) {
				return nil, errf(a.Pos, "policy %s: type mismatch: source %s type %s is not a subtype of %s input type %s",
					r.ID, conn.From, from.Type, a.Def, in[0].Type)
			}
			if !c.reg.SubtypeOf(out[0].Type, to.Type) {
				return nil, errf(a.Pos, "policy %s: type mismatch: %s output type %s is not a subtype of sink %s type %s",
					r.ID, a.Def, out[0].Type, conn.To, to.Type)
			}
		}
		pc.InsertDecl = d
		pc.InsertIn = in[0].Name
		pc.InsertOut = out[0].Name
	case *RemoveAction:
		if !knownInst(a.Inst) {
			return nil, errf(a.Pos, "policy %s: unknown streamlet instance %q", r.ID, a.Inst)
		}
	case *WorkersAction:
		if !knownInst(a.Inst) {
			return nil, errf(a.Pos, "policy %s: unknown streamlet instance %q", r.ID, a.Inst)
		}
	case *ParamAction:
		if !knownInst(a.Inst) {
			return nil, errf(a.Pos, "policy %s: unknown streamlet instance %q", r.ID, a.Inst)
		}
	}
	return pc, nil
}

// PolicyTargetDecl resolves the streamlet declaration a policy action's
// instance target refers to: an initial instance's declaration, or, for
// instances created by an insert action, the inserted definition. Nil when
// unresolved (e.g. composite instances).
func (sc *StreamConfig) PolicyTargetDecl(inst string) *StreamletDecl {
	if i := sc.Instances[inst]; i != nil {
		return i.Decl
	}
	for _, pc := range sc.Policies {
		if ia, ok := pc.Rule.Action.(*InsertAction); ok && ia.Def == inst {
			return pc.InsertDecl
		}
	}
	return nil
}

// deriveExternalPorts computes the composite interface per §5.1.4: all
// inner streamlet ports not involved in any initial connection, exported
// under flattened names ("inst_port"), in declaration order.
func deriveExternalPorts(sc *StreamConfig) []ExternalPort {
	usedFrom := map[string]bool{}
	usedTo := map[string]bool{}
	for _, conn := range sc.Connections {
		usedFrom[conn.From.String()] = true
		usedTo[conn.To.String()] = true
	}
	var ext []ExternalPort
	for _, v := range sc.Order { // declaration order keeps output stable
		inst := sc.Instances[v]
		if inst == nil {
			continue
		}
		for _, p := range inst.Decl.Ports {
			ref := PortRef{Inst: v, Port: p.Name, Pos: p.Pos}
			exported := PortDecl{Dir: p.Dir, Name: v + "_" + p.Name, Type: p.Type, Pos: p.Pos}
			if p.Dir == PortIn && !usedTo[ref.String()] {
				ext = append(ext, ExternalPort{Decl: exported, Inner: ref})
			}
			if p.Dir == PortOut && !usedFrom[ref.String()] {
				ext = append(ext, ExternalPort{Decl: exported, Inner: ref})
			}
		}
	}
	return ext
}

// MergeFiles combines several parsed files into one compilation unit —
// e.g. a reusable streamlet-library file plus an application script. The
// global-name uniqueness rules of §5.1 apply across the whole unit.
func MergeFiles(files ...*File) (*File, error) {
	merged := &File{}
	for _, f := range files {
		merged.Streamlets = append(merged.Streamlets, f.Streamlets...)
		merged.Channels = append(merged.Channels, f.Channels...)
		merged.Streams = append(merged.Streams, f.Streams...)
	}
	if err := validateFile(merged); err != nil {
		return nil, err
	}
	return merged, nil
}

// CompileSources parses each named source and compiles them together as one
// unit. The name keys appear in error messages.
func CompileSources(sources map[string]string, reg *mime.Registry) (*Config, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*File, 0, len(names))
	for _, n := range names {
		f, err := Parse(sources[n])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		files = append(files, f)
	}
	merged, err := MergeFiles(files...)
	if err != nil {
		return nil, err
	}
	return CompileFile(merged, reg)
}
