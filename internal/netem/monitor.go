package netem

import (
	"fmt"
	"sync"

	"mobigate/internal/event"
	"mobigate/internal/obs"
)

// BandwidthMonitor watches a link and raises LOW_BANDWIDTH / HIGH_BANDWIDTH
// context events when the bandwidth crosses a threshold — the context-
// collection role the Event Manager's monitor thread plays in §6.4 (and the
// TranSend-style handoff notification of §2.2.1). Events are raised only on
// crossings, not on every change, so subscribed streams are not flooded.
type BandwidthMonitor struct {
	mu        sync.Mutex
	below     bool
	threshold int64
	mgr       *event.Manager
	source    string
}

// WatchBandwidth attaches a monitor to a link. Events carry the given
// source ("" broadcasts to all subscribers of Network Variation events).
// The initial state is evaluated immediately: a link already below the
// threshold raises LOW_BANDWIDTH right away.
func WatchBandwidth(l *Link, mgr *event.Manager, thresholdBps int64, source string) *BandwidthMonitor {
	m := &BandwidthMonitor{threshold: thresholdBps, mgr: mgr, source: source}
	m.evaluate(l.Bandwidth(), l.ScheduleStep())
	l.OnBandwidthChange(func(_, newBps int64) { m.evaluate(newBps, l.ScheduleStep()) })
	return m
}

func (m *BandwidthMonitor) evaluate(bps, step int64) {
	m.mu.Lock()
	wasBelow := m.below
	m.below = bps < m.threshold
	crossed := m.below != wasBelow
	isBelow := m.below
	m.mu.Unlock()
	if !crossed {
		return
	}
	id := event.HIGH_BANDWIDTH
	if isBelow {
		id = event.LOW_BANDWIDTH
	}
	// The crossing's flight entry names the active schedule step, so link
	// entries in a dump are self-describing without the experiment's config.
	obs.FlightRecord(obs.FlightBandwidth, "bandwidth-monitor",
		fmt.Sprintf("%s step %d", id, step), bps)
	// Raise never fails for catalog events.
	_ = m.mgr.Raise(id, m.source)
}

// Below reports whether the link is currently below the threshold.
func (m *BandwidthMonitor) Below() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.below
}

// WatchOutages raises LINK_BLACKOUT / LINK_RESTORED context events on every
// SetDown transition of the link — the disconnection notifications of
// §2.2.1, delivered through the same event loop as bandwidth variations so
// streams can subscribe and reconfigure (buffer more, switch codecs) while
// the link is dark.
func WatchOutages(l *Link, mgr *event.Manager, source string) {
	l.OnStateChange(func(down bool) {
		id := event.LINK_RESTORED
		if down {
			id = event.LINK_BLACKOUT
		}
		// Raise never fails for catalog events.
		_ = mgr.Raise(id, source)
	})
}
