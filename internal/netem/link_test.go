package netem

import (
	"sync"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mime"
)

func msg(n int) *mime.Message {
	return mime.NewMessage(mime.MustParse("application/octet-stream"), make([]byte, n))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BandwidthBps: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(Config{BandwidthBps: 1000, LossRate: 1.0}); err == nil {
		t.Error("loss rate 1.0 accepted")
	}
	if _, err := New(Config{BandwidthBps: 1000, LossRate: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	// 8000 bits/s; message of 1000-160 payload bytes → wire 1000 bytes =
	// 8000 bits → exactly 1 virtual second (no delay, no loss).
	l := MustNew(Config{BandwidthBps: 8000, NoAck: true})
	start := time.Now()
	if err := l.Send(msg(1000 - headerOverheadBytes)); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > 100*time.Millisecond {
		t.Errorf("virtual send took %v of wall time", real)
	}
	if got := l.Elapsed(); got != time.Second {
		t.Errorf("virtual clock = %v, want 1s", got)
	}
	d, err := l.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Arrival != time.Second {
		t.Errorf("arrival = %v", d.Arrival)
	}
}

func TestAckPerMessageAddsRTT(t *testing.T) {
	base := MustNew(Config{BandwidthBps: 8000, NoAck: true})
	acked := MustNew(Config{BandwidthBps: 8000, Delay: 50 * time.Millisecond})
	m := msg(1000 - headerOverheadBytes)
	if got, want := base.TransferTime(m), time.Second; got != want {
		t.Errorf("no-ack transfer = %v", got)
	}
	if got, want := acked.TransferTime(m), time.Second+100*time.Millisecond; got != want {
		t.Errorf("acked transfer = %v, want %v", got, want)
	}
	// NoAck still pays one-way delay.
	oneway := MustNew(Config{BandwidthBps: 8000, NoAck: true, Delay: 30 * time.Millisecond})
	if got, want := oneway.TransferTime(m), time.Second+30*time.Millisecond; got != want {
		t.Errorf("one-way transfer = %v, want %v", got, want)
	}
}

func TestLossScalesEffectiveBandwidth(t *testing.T) {
	clean := MustNew(Config{BandwidthBps: 8000, NoAck: true})
	lossy := MustNew(Config{BandwidthBps: 8000, NoAck: true, LossRate: 0.5})
	m := msg(840)
	if lossy.TransferTime(m) <= clean.TransferTime(m) {
		t.Error("loss did not slow the link")
	}
	ratio := float64(lossy.TransferTime(m)) / float64(clean.TransferTime(m))
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("50%% loss ratio = %.2f, want ~2", ratio)
	}
}

func TestVirtualOrderPreserved(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 1 << 20, NoAck: true})
	for i := 0; i < 10; i++ {
		m := msg(100)
		m.SetHeader("X-Seq", string(rune('a'+i)))
		if err := l.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	var last time.Duration
	for i := 0; i < 10; i++ {
		d, err := l.Receive(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if d.Msg.Header("X-Seq") != string(rune('a'+i)) {
			t.Errorf("order broken at %d", i)
		}
		if d.Arrival < last {
			t.Error("arrival times not monotone")
		}
		last = d.Arrival
	}
}

func TestRealTimeMode(t *testing.T) {
	// 80 kb/s, 1000-byte wire message → 100 ms.
	l := MustNew(Config{BandwidthBps: 80000, NoAck: true, Mode: RealTime})
	start := time.Now()
	if err := l.Send(msg(1000 - headerOverheadBytes)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("real-time send returned in %v, want ≥ ~100ms", elapsed)
	}
	if _, err := l.Receive(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSetBandwidthAndObservers(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 1000})
	var mu sync.Mutex
	var calls [][2]int64
	l.OnBandwidthChange(func(old, new int64) {
		mu.Lock()
		calls = append(calls, [2]int64{old, new})
		mu.Unlock()
	})
	if err := l.SetBandwidth(2000); err != nil {
		t.Fatal(err)
	}
	if l.Bandwidth() != 2000 {
		t.Errorf("bandwidth = %d", l.Bandwidth())
	}
	if err := l.SetBandwidth(0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != [2]int64{1000, 2000} {
		t.Errorf("calls = %v", calls)
	}
}

func TestStatsAndThroughput(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 8000, NoAck: true})
	if l.ThroughputBps() != 0 {
		t.Error("throughput before traffic")
	}
	for i := 0; i < 4; i++ {
		if err := l.Send(msg(840)); err != nil {
			t.Fatal(err)
		}
	}
	bytes, msgs := l.Stats()
	if msgs != 4 || bytes != 4*1000 {
		t.Errorf("stats = %d bytes, %d msgs", bytes, msgs)
	}
	// Saturated virtual link throughput equals configured bandwidth.
	tp := l.ThroughputBps()
	if tp < 7900 || tp > 8100 {
		t.Errorf("throughput = %.0f, want ~8000", tp)
	}
}

func TestCloseSemantics(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 8000, NoAck: true})
	if err := l.Send(msg(100)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // idempotent
	if err := l.Send(msg(100)); err != ErrLinkClosed {
		t.Errorf("send after close = %v", err)
	}
	// Pending delivery drains.
	if _, err := l.Receive(time.Second); err != nil {
		t.Errorf("pending delivery lost: %v", err)
	}
	if _, err := l.Receive(10 * time.Millisecond); err != ErrLinkClosed {
		t.Errorf("empty closed receive = %v", err)
	}
}

func TestReceiveTimeout(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 8000})
	if _, err := l.Receive(10 * time.Millisecond); err == nil {
		t.Error("empty receive returned")
	}
}

func TestConcurrentSenders(t *testing.T) {
	l := MustNew(Config{BandwidthBps: 1 << 24, NoAck: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Send(msg(64)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	_, msgs := l.Stats()
	if msgs != 200 {
		t.Errorf("msgs = %d", msgs)
	}
}

func TestWatchBandwidthRaisesEvents(t *testing.T) {
	mgr := event.NewManager(nil)
	defer mgr.Close()
	rec := &recorder{name: "webApp"}
	mgr.Subscribe(event.NetworkVariation, rec)

	l := MustNew(Config{BandwidthBps: 200_000})
	mon := WatchBandwidth(l, mgr, 100_000, "")
	if mon.Below() {
		t.Error("initially below")
	}
	_ = l.SetBandwidth(50_000)  // crossing down → LOW_BANDWIDTH
	_ = l.SetBandwidth(40_000)  // still below → no event
	_ = l.SetBandwidth(150_000) // crossing up → HIGH_BANDWIDTH
	mgr.Close()

	got := rec.events()
	if len(got) != 2 || got[0].EventID != event.LOW_BANDWIDTH || got[1].EventID != event.HIGH_BANDWIDTH {
		t.Errorf("events = %v", got)
	}
}

func TestWatchBandwidthInitialBelow(t *testing.T) {
	mgr := event.NewManager(nil)
	rec := &recorder{name: "app"}
	mgr.Subscribe(event.NetworkVariation, rec)
	l := MustNew(Config{BandwidthBps: 50_000})
	mon := WatchBandwidth(l, mgr, 100_000, "")
	if !mon.Below() {
		t.Error("not below at start")
	}
	mgr.Close()
	if got := rec.events(); len(got) != 1 || got[0].EventID != event.LOW_BANDWIDTH {
		t.Errorf("events = %v", got)
	}
}

type recorder struct {
	name string
	mu   sync.Mutex
	got  []event.ContextEvent
}

func (r *recorder) SubscriberName() string { return r.name }
func (r *recorder) OnEvent(e event.ContextEvent) {
	r.mu.Lock()
	r.got = append(r.got, e)
	r.mu.Unlock()
}
func (r *recorder) events() []event.ContextEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]event.ContextEvent, len(r.got))
	copy(out, r.got)
	return out
}
