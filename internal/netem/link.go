// Package netem emulates the wireless operating environment of the thesis
// testbed (§7.1): a link with configurable bandwidth, propagation delay and
// loss, standing in for the Linux-router setup of Figure 7-1. Two modes are
// provided: RealTime actually paces deliveries (for interactive examples),
// while Virtual advances a simulated clock analytically so the Figure 7-7
// sweep over 20 Kb/s … 2 Mb/s runs in milliseconds. Both modes apply the
// same per-message cost model:
//
//	t(msg) = wireBits / bandwidth · 1/(1-loss)  +  RTT (when acked)
//
// The per-message acknowledgement term reproduces the delay-sensitivity the
// thesis observed (its transfers were request/response over TCP), and the
// loss rate is folded into an effective-bandwidth factor, modelling
// link-layer retransmission of a reliable channel.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
)

// Link metrics. The counters and the transfer-time histogram aggregate
// across links; the bandwidth/loss gauges reflect the most recently
// created or adjusted link (experiments and the gateway run one emulated
// link at a time).
var (
	mLinkBandwidth = obs.DefaultGauge(obs.MLinkBandwidthBps)
	mLinkLoss      = obs.DefaultGauge(obs.MLinkLossRate)
	mLinkMsgs      = obs.DefaultCounter(obs.MLinkMessagesTotal)
	mLinkBytes     = obs.DefaultCounter(obs.MLinkWireBytesTotal)
	mLinkTransfer  = obs.DefaultHistogram(obs.MLinkTransferSeconds, nil)
)

// Mode selects how the link passes time.
type Mode int

const (
	// Virtual advances a simulated clock; Send never sleeps.
	Virtual Mode = iota
	// RealTime paces message delivery with the wall clock.
	RealTime
)

func (m Mode) String() string {
	if m == RealTime {
		return "real-time"
	}
	return "virtual"
}

// headerOverheadBytes approximates per-message framing cost on the wire
// (MIME headers plus transport framing).
const headerOverheadBytes = 160

// Config parameterizes a link.
type Config struct {
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// LossRate in [0, 1) models link-layer retransmissions: the effective
	// bandwidth is scaled by (1 - LossRate).
	LossRate float64
	// AckPerMessage adds one round-trip per message (the request/response
	// behaviour of the thesis testbed). Default true; set NoAck to disable.
	NoAck bool
	// Mode selects virtual or real-time pacing.
	Mode Mode
	// Seed drives loss randomization bookkeeping (stats only).
	Seed int64
}

// Delivery is a message that crossed the link, with its arrival stamp on
// the link's clock.
type Delivery struct {
	Msg *mime.Message
	// Arrival is the position of the link clock when the message fully
	// arrived (virtual mode) or the wall-clock arrival (real-time mode,
	// relative to link creation).
	Arrival time.Duration
}

// Link is a point-to-point emulated wireless link. Safe for concurrent
// senders; deliveries preserve send order.
type Link struct {
	mu   sync.Mutex
	cfg  Config
	rng  *rand.Rand
	out  chan Delivery
	done chan struct{}

	clock     time.Duration // virtual elapsed transmission time
	started   time.Time     // real-time base
	bytesSent int64
	msgsSent  int64
	bwChanges []func(old, new int64)
	closed    bool
	// step counts bandwidth-schedule steps: it starts at 0 and advances on
	// every SetBandwidth, so flight-recorder entries for link events can
	// name which step of an experiment's bandwidth schedule was active.
	step int64

	// Blackout state (§2.2.1 disconnection handling): while down, Send
	// blocks until the link is restored or closed. upSig is a generation
	// channel: created when the link goes down, closed when it comes back
	// up, releasing every blocked sender at once.
	down         bool
	upSig        chan struct{}
	stateChanges []func(down bool)
}

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("netem: link closed")

// New creates a link. Bandwidth must be positive.
func New(cfg Config) (*Link, error) {
	if cfg.BandwidthBps <= 0 {
		return nil, fmt.Errorf("netem: bandwidth must be positive, got %d", cfg.BandwidthBps)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("netem: loss rate %v outside [0, 1)", cfg.LossRate)
	}
	mLinkBandwidth.Set(float64(cfg.BandwidthBps))
	mLinkLoss.Set(cfg.LossRate)
	return &Link{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		out:     make(chan Delivery, 4096),
		done:    make(chan struct{}),
		started: time.Now(),
	}, nil
}

// MustNew is New that panics on error (for fixed configurations).
func MustNew(cfg Config) *Link {
	l, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Bandwidth returns the current bandwidth in bits per second.
func (l *Link) Bandwidth() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.BandwidthBps
}

// SetBandwidth changes the link bandwidth (a vertical handoff or signal
// variation) and notifies observers.
func (l *Link) SetBandwidth(bps int64) error {
	if bps <= 0 {
		return fmt.Errorf("netem: bandwidth must be positive, got %d", bps)
	}
	l.mu.Lock()
	old := l.cfg.BandwidthBps
	l.cfg.BandwidthBps = bps
	l.step++
	step := l.step
	mLinkBandwidth.Set(float64(bps))
	observers := make([]func(old, new int64), len(l.bwChanges))
	copy(observers, l.bwChanges)
	l.mu.Unlock()
	obs.FlightRecord(obs.FlightBandwidth, "link",
		fmt.Sprintf("step %d: %d -> %d bps", step, old, bps), bps)
	for _, f := range observers {
		f(old, bps)
	}
	return nil
}

// ScheduleStep returns the active bandwidth-schedule step: 0 until the
// first SetBandwidth, then the count of bandwidth changes applied so far.
func (l *Link) ScheduleStep() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.step
}

// OnBandwidthChange registers an observer called after every SetBandwidth.
func (l *Link) OnBandwidthChange(f func(old, new int64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bwChanges = append(l.bwChanges, f)
}

// SetDown takes the link down (a blackout: tunnel, elevator, coverage
// hole) or restores it. While down, Send blocks — in both modes — until
// the link is restored or closed, modelling the store-and-forward
// behaviour the gateway relies on across disconnections. Observers
// registered with OnStateChange are notified of every transition.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	if l.closed || l.down == down {
		l.mu.Unlock()
		return
	}
	l.down = down
	if down {
		l.upSig = make(chan struct{})
	} else {
		close(l.upSig)
		l.upSig = nil
	}
	step, bw := l.step, l.cfg.BandwidthBps
	observers := make([]func(down bool), len(l.stateChanges))
	copy(observers, l.stateChanges)
	l.mu.Unlock()
	code := obs.FlightRestored
	if down {
		code = obs.FlightBlackout
	}
	obs.FlightRecord(code, "link", fmt.Sprintf("step %d", step), bw)
	for _, f := range observers {
		f(down)
	}
}

// Down reports whether the link is currently in a blackout.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// OnStateChange registers an observer called after every SetDown
// transition.
func (l *Link) OnStateChange(f func(down bool)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stateChanges = append(l.stateChanges, f)
}

// WireBytes returns the modelled on-the-wire size of a message.
func WireBytes(m *mime.Message) int64 {
	return int64(m.Len() + headerOverheadBytes)
}

// TransferTime returns the modelled time for one message at the current
// configuration.
func (l *Link) TransferTime(m *mime.Message) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transferTimeLocked(WireBytes(m))
}

func (l *Link) transferTimeLocked(wire int64) time.Duration {
	bits := float64(wire * 8)
	eff := float64(l.cfg.BandwidthBps) * (1 - l.cfg.LossRate)
	tx := time.Duration(bits / eff * float64(time.Second))
	if l.cfg.NoAck {
		return tx + l.cfg.Delay
	}
	return tx + 2*l.cfg.Delay
}

// recordLinkSpan journals the wireless-transfer span of a traced message
// and re-parents the message's span context under it, so the client peer
// streamlets hang their spans off the link hop. Called before the delivery
// lands in the out channel — the channel send is the happens-before edge
// that makes the header rewrite safe.
func (l *Link) recordLinkSpan(m *mime.Message, sctx obs.SpanContext, startNs, durNs int64) {
	if !sctx.Valid() {
		return
	}
	col := obs.Spans()
	id := col.NextID()
	col.Record(obs.Span{
		TraceID: sctx.TraceID, SpanID: id, ParentID: sctx.ParentID,
		Kind: obs.SpanLink, Site: col.Site(), Name: "link",
		StartNs: startNs, DurNs: durNs, Bytes: m.Len(),
	})
	m.SetHeader(mime.HeaderSpanContext, obs.EncodeSpanContext(obs.SpanContext{
		TraceID: sctx.TraceID, ParentID: id, StartNs: sctx.StartNs,
	}))
}

// Send transmits a message across the link. In virtual mode the link clock
// advances and the call returns immediately; in real-time mode the call
// sleeps for the transfer time.
func (l *Link) Send(m *mime.Message) error {
	var sctx obs.SpanContext
	var sendStart int64
	if obs.SpansEnabled() {
		sctx = obs.ParseSpanContext(m.Header(mime.HeaderSpanContext))
		if sctx.Valid() {
			sendStart = obs.MonoNow()
		}
	}
	l.mu.Lock()
	for {
		if l.closed {
			l.mu.Unlock()
			return ErrLinkClosed
		}
		if !l.down {
			break
		}
		// Blackout: park until restored or closed. The blocked sender backs
		// pressure up into the stream's queues, which buffer the traffic —
		// no message is lost across the outage.
		sig := l.upSig
		l.mu.Unlock()
		select {
		case <-sig:
		case <-l.done:
			return ErrLinkClosed
		}
		l.mu.Lock()
	}
	wire := WireBytes(m)
	cost := l.transferTimeLocked(wire)
	l.bytesSent += wire
	l.msgsSent++
	mLinkMsgs.Inc()
	mLinkBytes.Add(uint64(wire))
	mLinkTransfer.Observe(cost.Seconds())

	if l.cfg.Mode == Virtual {
		l.clock += cost
		arrival := l.clock
		l.mu.Unlock()
		// Virtual mode never sleeps, so the span carries the modelled cost.
		l.recordLinkSpan(m, sctx, sendStart, int64(cost))
		select {
		case l.out <- Delivery{Msg: m, Arrival: arrival}:
			return nil
		case <-l.done:
			return ErrLinkClosed
		}
	}
	l.mu.Unlock()

	select {
	case <-time.After(cost):
	case <-l.done:
		return ErrLinkClosed
	}
	// Real-time mode paces with the wall clock; the span carries the actual
	// elapsed time, blackout park included.
	l.recordLinkSpan(m, sctx, sendStart, obs.MonoNow()-sendStart)
	select {
	case l.out <- Delivery{Msg: m, Arrival: time.Since(l.started)}:
		return nil
	case <-l.done:
		return ErrLinkClosed
	}
}

// SendMessage lets a Link serve as a services.Sink.
func (l *Link) SendMessage(m *mime.Message) error { return l.Send(m) }

// Receive returns the next delivery, waiting up to timeout.
func (l *Link) Receive(timeout time.Duration) (Delivery, error) {
	select {
	case d := <-l.out:
		return d, nil
	case <-time.After(timeout):
		return Delivery{}, fmt.Errorf("netem: receive timed out after %v", timeout)
	case <-l.done:
		// Drain anything already queued before reporting closure.
		select {
		case d := <-l.out:
			return d, nil
		default:
			return Delivery{}, ErrLinkClosed
		}
	}
}

// TryReceive returns a pending delivery without blocking.
func (l *Link) TryReceive() (Delivery, bool) {
	select {
	case d := <-l.out:
		return d, true
	default:
		return Delivery{}, false
	}
}

// Deliveries exposes the receive channel for select-based consumers.
func (l *Link) Deliveries() <-chan Delivery { return l.out }

// Elapsed returns the link clock: total modelled transmission time in
// virtual mode, wall time since creation in real-time mode.
func (l *Link) Elapsed() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Mode == Virtual {
		return l.clock
	}
	return time.Since(l.started)
}

// Stats returns cumulative wire bytes and message count.
func (l *Link) Stats() (bytes int64, msgs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesSent, l.msgsSent
}

// ThroughputBps returns delivered payload bits per second of link time.
func (l *Link) ThroughputBps() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var elapsed time.Duration
	if l.cfg.Mode == Virtual {
		elapsed = l.clock
	} else {
		elapsed = time.Since(l.started)
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(l.bytesSent*8) / elapsed.Seconds()
}

// Close shuts the link down; pending receives drain, further sends fail.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
}
