// Package integration exercises whole-system paths that span the server,
// client, MCL, events and services packages together.
package integration

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mobigate"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/server"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// distillationOverTCP is a full-stack script: sign + compress the text
// flow; the client must verify and decompress transparently.
const secureFlowScript = `
streamlet signer {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "integrity/sign"; }
}
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; param-level = 6; }
}
main stream secureflow {
	streamlet sg = new-streamlet (signer);
	streamlet c = new-streamlet (compressor);
	connect (sg.po, c.pi);
}
`

func TestSecureFlowOverTCP(t *testing.T) {
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { t.Logf("stream error: %v", err) },
	})
	defer gw.Close()
	if err := gw.LoadScript(secureFlowScript); err != nil {
		t.Fatal(err)
	}

	const n = 10
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = services.GenText(2048+i*31, int64(i))
	}
	source := func(*mime.Message) <-chan *mime.Message {
		ch := make(chan *mime.Message)
		go func() {
			defer close(ch)
			for _, b := range bodies {
				ch <- mime.NewMessage(services.TypePlainText, append([]byte(nil), b...))
			}
		}()
		return ch
	}
	fe := mobigate.NewFrontend(gw, source)
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := mobigate.NewMessage(mime.Wildcard, nil)
	req.SetHeader(server.HeaderRequestStream, "secureflow")
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	_ = conn.(*net.TCPConn).CloseWrite()

	var mu sync.Mutex
	var got [][]byte
	mc := mobigate.NewClient(mobigate.ClientOptions{
		ErrorHandler: func(err error) { t.Errorf("client: %v", err) },
	}, func(m *mobigate.Message) {
		mu.Lock()
		got = append(got, m.Body())
		mu.Unlock()
	})
	if err := mc.ServeConn(conn); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("received %d/%d", len(got), n)
	}
	want := map[string]bool{}
	for _, b := range bodies {
		want[string(b)] = true
	}
	for _, b := range got {
		if !want[string(b)] {
			t.Error("verified+decompressed body does not match any original")
		}
	}
}

// TestStreamletSharing exercises §4.4.3: one stateless processor instance
// serves two concurrently running streams; the Content-Session tag keeps
// their messages apart.
func TestStreamletSharing(t *testing.T) {
	shared := &services.Compressor{}
	dir := streamlet.NewDirectory()
	dir.Register("shared/compress", func() streamlet.Processor { return shared })

	src := `
streamlet c { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "shared/compress"; } }
stream flowA { streamlet s = new-streamlet (c); }
stream flowB { streamlet s = new-streamlet (c); }
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string) (*stream.Stream, *stream.Inlet, *stream.Outlet) {
		st, err := stream.FromConfig(cfg, name, nil, dir)
		if err != nil {
			t.Fatal(err)
		}
		in, err := st.OpenInlet(mcl.PortRef{Inst: "s", Port: "pi"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := st.OpenOutlet(mcl.PortRef{Inst: "s", Port: "po"})
		if err != nil {
			t.Fatal(err)
		}
		st.Start()
		t.Cleanup(st.End)
		return st, in, out
	}
	stA, inA, outA := run("flowA")
	stB, inB, outB := run("flowB")

	// Both streams use the very same processor instance.
	if stA.Streamlet("s").Processor() != stB.Streamlet("s").Processor() {
		t.Fatal("processor instance not shared")
	}

	var wg sync.WaitGroup
	push := func(in *stream.Inlet, prefix string) {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			m := mime.NewMessage(services.TypePlainText,
				[]byte(fmt.Sprintf("%s-%02d %s", prefix, i, services.GenText(512, int64(i)))))
			if err := in.Send(m); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go push(inA, "A")
	go push(inB, "B")
	wg.Wait()

	check := func(out *stream.Outlet, st *stream.Stream, prefix string) {
		for i := 0; i < 20; i++ {
			m, err := out.Receive(5 * time.Second)
			if err != nil {
				t.Fatalf("%s message %d: %v", prefix, i, err)
			}
			if m.Session() != st.SessionID() {
				t.Fatalf("%s message carries session %q, want %q", prefix, m.Session(), st.SessionID())
			}
		}
	}
	check(outA, stA, "A")
	check(outB, stB, "B")
	if stA.SessionID() == stB.SessionID() {
		t.Error("streams share a session id")
	}
}

// TestRecursiveCompositionEndToEnd runs the Figure 4-9 idiom live: a stream
// reused as a composite streamlet inside another stream, messages flowing
// through both layers.
func TestRecursiveCompositionEndToEnd(t *testing.T) {
	src := `
streamlet signer { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "integrity/sign"; } }
streamlet compressor { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/compress"; } }
stream innerFlow {
	streamlet a = new-streamlet (signer);
	streamlet b = new-streamlet (compressor);
	connect (a.po, b.pi);
}
streamlet innerFlow { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "mcl:innerFlow"; } }
streamlet cache { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "general/cache"; } }
main stream outerFlow {
	streamlet k = new-streamlet (cache);
	streamlet f = new-streamlet (innerFlow);
	connect (k.po, f.pi);
}
`
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stream.FromConfig(cfg, "outerFlow", nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()
	in, err := st.OpenInlet(mcl.PortRef{Inst: "k", Port: "pi"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := st.Inner("f")
	if inner == nil {
		t.Fatal("composite missing")
	}
	out, err := inner.OpenOutlet(mcl.PortRef{Inst: "b", Port: "po"})
	if err != nil {
		t.Fatal(err)
	}
	st.Start()

	body := services.GenText(4096, 1)
	if err := in.Send(mime.NewMessage(services.TypePlainText, append([]byte(nil), body...))); err != nil {
		t.Fatal(err)
	}
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The flow passed cache → signer → compressor: compressed, tagged, and
	// carrying both reverse peers.
	if m.Len() >= len(body) {
		t.Error("not compressed")
	}
	peers := m.Peers()
	if len(peers) != 2 || peers[0] != services.SignerPeerID || peers[1] != services.CompressorPeerID {
		t.Errorf("peers = %v", peers)
	}
	// Client restores it fully.
	mc := mobigate.NewClient(mobigate.ClientOptions{}, nil)
	back, err := mc.Process(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Body(), body) {
		t.Error("round trip failed")
	}
}

// TestEventDrivenSessionsOverTCP raises an event while TCP sessions are
// live; every per-session stream instance reconfigures.
func TestEventDrivenSessionsOverTCP(t *testing.T) {
	src := `
streamlet cache { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "general/cache"; } }
streamlet compressor { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/compress"; } }
main stream adaptive {
	streamlet k = new-streamlet (cache);
	streamlet c = new-streamlet (compressor);
	when (LOW_BANDWIDTH) {
		connect (k.po, c.pi);
	}
}
`
	gw := mobigate.NewGateway(mobigate.GatewayOptions{})
	defer gw.Close()
	if err := gw.LoadScript(src); err != nil {
		t.Fatal(err)
	}
	st, err := gw.Deploy("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Raise(event.LOW_BANDWIDTH, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Reconfigurations() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Reconfigurations() != 1 {
		t.Fatalf("reconfigurations = %d", st.Reconfigurations())
	}
	// The post-reconfiguration topology compresses: k → c.
	in, err := st.OpenInlet(mobigate.Port("k", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(mobigate.Port("c", "po"))
	if err != nil {
		t.Fatal(err)
	}
	body := services.GenText(4096, 2)
	if err := in.Send(mime.NewMessage(services.TypePlainText, body)); err != nil {
		t.Fatal(err)
	}
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() >= len(body) {
		t.Error("reconfigured flow did not compress")
	}
}

// TestUpstreamDirection exercises §3.2's note that the architecture also
// addresses client-to-server flows: the MobiGATE "server" runs on the
// mobile node adapting the upload (compressing before the expensive link),
// and the fixed host reverse-processes with the thin-client machinery.
func TestUpstreamDirection(t *testing.T) {
	// Mobile-side gateway compresses uploads.
	mobile := mobigate.NewGateway(mobigate.GatewayOptions{})
	defer mobile.Close()
	if err := mobile.LoadScript(`
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream upload {
	streamlet c = new-streamlet (compressor);
}`); err != nil {
		t.Fatal(err)
	}
	st, err := mobile.Deploy("upload")
	if err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(mobigate.Port("c", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(mobigate.Port("c", "po"))
	if err != nil {
		t.Fatal(err)
	}

	// The fixed host uses the same reverse-processing machinery.
	fixedHost := mobigate.NewClient(mobigate.ClientOptions{}, nil)

	body := services.GenText(8192, 11)
	if err := in.Send(mime.NewMessage(services.TypePlainText, append([]byte(nil), body...))); err != nil {
		t.Fatal(err)
	}
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() >= len(body) {
		t.Error("upload not compressed before the wireless hop")
	}
	got, err := fixedHost.Process(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body(), body) {
		t.Error("fixed host did not restore the upload")
	}
}
