package services

import (
	"bytes"
	"strings"
	"testing"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

func runProc(t *testing.T, p streamlet.Processor, port string, m *mime.Message) []streamlet.Emission {
	t.Helper()
	out, err := p.Process(streamlet.Input{Port: port, Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDownSamplerProcessor(t *testing.T) {
	m := GenImageMessage(32, 32, 1)
	before := m.Len()
	out := runProc(t, &DownSampler{}, "pi", m)
	if len(out) != 1 {
		t.Fatalf("emissions = %d", len(out))
	}
	if out[0].Msg.Len() >= before {
		t.Errorf("no shrink: %d -> %d", before, out[0].Msg.Len())
	}
	r, err := DecodeRaster(out[0].Msg.Body())
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 16 || r.Height != 16 {
		t.Errorf("dims = %dx%d", r.Width, r.Height)
	}
	// Two passes.
	m2 := GenImageMessage(32, 32, 1)
	out = runProc(t, &DownSampler{Passes: 2}, "pi", m2)
	r, _ = DecodeRaster(out[0].Msg.Body())
	if r.Width != 8 {
		t.Errorf("2-pass width = %d", r.Width)
	}
	// Non-image input errors.
	if _, err := (&DownSampler{}).Process(streamlet.Input{Msg: GenTextMessage(100, 1)}); err == nil {
		t.Error("downsampling text succeeded")
	}
}

func TestGray16MapperProcessor(t *testing.T) {
	m := GenImageMessage(16, 16, 2)
	out := runProc(t, Gray16Mapper{}, "pi", m)
	if !out[0].Msg.ContentType().Equal(TypeGray16) {
		t.Errorf("type = %s", out[0].Msg.ContentType())
	}
	if _, err := DecodeGray16(out[0].Msg.Body()); err != nil {
		t.Error(err)
	}
}

func TestTranscoderLossyButDecodable(t *testing.T) {
	m := GenImageMessage(32, 32, 3)
	orig, _ := DecodeRaster(m.Body())
	before := m.Len()
	out := runProc(t, &Transcoder{Quality: 4}, "pi", m)
	if out[0].Msg.Len() >= before {
		t.Errorf("transcode grew message: %d -> %d", before, out[0].Msg.Len())
	}
	if !out[0].Msg.ContentType().Equal(TypeRasterJPEG) {
		t.Errorf("type = %s", out[0].Msg.ContentType())
	}
	back, err := DecodeTranscoded(out[0].Msg.Body())
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 32 || back.Height != 32 {
		t.Errorf("dims = %dx%d", back.Width, back.Height)
	}
	// Lossy: samples match the original up to quantization error (<16 for q=4).
	for i := range back.Pix {
		diff := int(orig.Pix[i]) - int(back.Pix[i])
		if diff < 0 {
			diff = -diff
		}
		if diff >= 16 {
			t.Fatalf("pixel %d error %d exceeds quantization bound", i, diff)
		}
	}
}

func TestPS2TextExtractsShows(t *testing.T) {
	src := GenPostScript(2000, 5)
	m := mime.NewMessage(TypePostScript, src)
	out := runProc(t, PS2Text{}, "pi", m)
	body := string(out[0].Msg.Body())
	if len(body) == 0 {
		t.Fatal("no text extracted")
	}
	if strings.Contains(body, "moveto") || strings.Contains(body, "%!PS") {
		t.Error("layout commands leaked into text")
	}
	if !out[0].Msg.ContentType().Equal(TypeRichText) {
		t.Errorf("type = %s", out[0].Msg.ContentType())
	}
	if out[0].Msg.Len() >= len(src) {
		t.Error("conversion did not reduce size")
	}
}

func TestExtractPostScriptText(t *testing.T) {
	got := ExtractPostScriptText("% comment\n72 700 moveto\n(hello world) show\n(second) show\n")
	if got != "hello world\nsecond" {
		t.Errorf("extract = %q", got)
	}
	if ExtractPostScriptText("% only comments\n") != "" {
		t.Error("comment-only doc produced text")
	}
}

func TestCompressorDecompressorRoundTrip(t *testing.T) {
	text := GenText(8192, 9)
	m := mime.NewMessage(TypePlainText, append([]byte(nil), text...))
	comp := &Compressor{}
	out := runProc(t, comp, "pi", m)
	if out[0].Msg.Len() >= len(text) {
		t.Errorf("compression grew: %d -> %d", len(text), out[0].Msg.Len())
	}
	ratio := float64(len(text)) / float64(out[0].Msg.Len())
	if ratio < 2 {
		t.Errorf("compression ratio %.2f too low for redundant text", ratio)
	}
	if out[0].Msg.Header("Content-Encoding") != "deflate" {
		t.Error("encoding header missing")
	}
	back := runProc(t, Decompressor{}, "pi", out[0].Msg)
	if !bytes.Equal(back[0].Msg.Body(), text) {
		t.Error("round trip corrupted text")
	}
	if back[0].Msg.Header("Content-Encoding") != "" {
		t.Error("encoding header not cleared")
	}
}

func TestDecompressorPassthroughOnPlain(t *testing.T) {
	m := GenTextMessage(100, 1)
	out := runProc(t, Decompressor{}, "pi", m)
	if string(out[0].Msg.Body()) != string(GenText(100, 1)) {
		t.Error("plain message modified")
	}
}

func TestCompressorPeerID(t *testing.T) {
	var p streamlet.Peered = &Compressor{}
	if p.PeerID() != CompressorPeerID {
		t.Errorf("peer = %q", p.PeerID())
	}
}

func TestSwitchRoutesByType(t *testing.T) {
	sw := NewDistillationSwitch()
	img := runProc(t, sw, "pi", GenImageMessage(8, 8, 1))
	if img[0].Port != "po1" {
		t.Errorf("image routed to %q", img[0].Port)
	}
	ps := runProc(t, sw, "pi", GenPostScriptMessage(500, 1))
	if ps[0].Port != "po2" {
		t.Errorf("postscript routed to %q", ps[0].Port)
	}
	txt := runProc(t, sw, "pi", GenTextMessage(100, 1))
	if txt[0].Port != "po2" {
		t.Errorf("text routed to %q", txt[0].Port)
	}
	// Unroutable type without default → error.
	odd := mime.NewMessage(mime.MustParse("audio/wav"), nil)
	if _, err := sw.Process(streamlet.Input{Msg: odd}); err == nil {
		t.Error("unroutable message accepted")
	}
	sw.DefaultPort = "po2"
	def := runProc(t, sw, "pi", mime.NewMessage(mime.MustParse("audio/wav"), nil))
	if def[0].Port != "po2" {
		t.Error("default port ignored")
	}
}

func TestMergeRetypesAndCounts(t *testing.T) {
	mg := &Merge{}
	a := runProc(t, mg, "pi1", GenImageMessage(8, 8, 1))
	b := runProc(t, mg, "pi2", GenTextMessage(64, 1))
	if a[0].Msg.ContentType().String() != "multipart/mixed" {
		t.Errorf("type = %s", a[0].Msg.ContentType())
	}
	if a[0].Msg.Header("X-Part-Source") != "pi1" || b[0].Msg.Header("X-Part-Source") != "pi2" {
		t.Error("part source headers wrong")
	}
	if mg.Parts() != 2 {
		t.Errorf("parts = %d", mg.Parts())
	}
	if a[0].Msg.Header("X-Original-Type") == "" {
		t.Error("original type not preserved")
	}
}

func TestPowerSavingBatches(t *testing.T) {
	ps := &PowerSaving{BurstSize: 3}
	var out []streamlet.Emission
	for i := 0; i < 2; i++ {
		out = runProc(t, ps, "pi", GenTextMessage(10, int64(i)))
		if len(out) != 0 {
			t.Fatalf("burst released early at %d", i)
		}
	}
	out = runProc(t, ps, "pi", GenTextMessage(10, 99))
	if len(out) != 3 {
		t.Fatalf("burst size = %d", len(out))
	}
	for _, em := range out {
		if em.Msg.Header("X-Burst") != "1" {
			t.Errorf("burst header = %q", em.Msg.Header("X-Burst"))
		}
	}
	// Held messages can be flushed.
	runProc(t, ps, "pi", GenTextMessage(10, 100))
	if flushed := ps.Flush(); len(flushed) != 1 {
		t.Errorf("flush = %d", len(flushed))
	}
	if again := ps.Flush(); len(again) != 0 {
		t.Error("double flush returned messages")
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	c := &Cache{MaxEntries: 2}
	m1 := mime.NewMessage(TypePlainText, []byte("alpha"))
	out := runProc(t, c, "pi", m1)
	if out[0].Msg.Header("X-Cache") != "MISS" {
		t.Error("first sight not a miss")
	}
	m1b := mime.NewMessage(TypePlainText, []byte("alpha"))
	out = runProc(t, c, "pi", m1b)
	if out[0].Msg.Header("X-Cache") != "HIT" {
		t.Error("repeat not a hit")
	}
	// Evict "alpha" by inserting two more distinct bodies.
	runProc(t, c, "pi", mime.NewMessage(TypePlainText, []byte("beta")))
	runProc(t, c, "pi", mime.NewMessage(TypePlainText, []byte("gamma")))
	out = runProc(t, c, "pi", mime.NewMessage(TypePlainText, []byte("alpha")))
	if out[0].Msg.Header("X-Cache") != "MISS" {
		t.Error("evicted entry still hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
}

func TestRedirectorCountsHops(t *testing.T) {
	m := GenTextMessage(128, 1)
	r := Redirector{}
	out := runProc(t, r, "pi", m)
	out = runProc(t, r, "pi", out[0].Msg)
	out = runProc(t, r, "pi", out[0].Msg)
	if out[0].Msg.Header("X-Redirector-Hops") != "3" {
		t.Errorf("hops = %q", out[0].Msg.Header("X-Redirector-Hops"))
	}
	if !bytes.Equal(out[0].Msg.Body(), GenText(128, 1)) {
		t.Error("redirector modified body")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	body := GenText(1024, 11)
	m := mime.NewMessage(TypePlainText, append([]byte(nil), body...))
	enc := &Encryptor{Key: []byte("secret")}
	out := runProc(t, enc, "pi", m)
	if bytes.Equal(out[0].Msg.Body(), body) {
		t.Error("encryption is identity")
	}
	dec := &Decryptor{Key: []byte("secret")}
	back := runProc(t, dec, "pi", out[0].Msg)
	if !bytes.Equal(back[0].Msg.Body(), body) {
		t.Error("decrypt did not recover plaintext")
	}
	// Wrong key garbles.
	m2 := mime.NewMessage(TypePlainText, append([]byte(nil), body...))
	out = runProc(t, enc, "pi", m2)
	bad := runProc(t, &Decryptor{Key: []byte("wrong")}, "pi", out[0].Msg)
	if bytes.Equal(bad[0].Msg.Body(), body) {
		t.Error("wrong key decrypted")
	}
	// Unencrypted passthrough.
	plain := runProc(t, dec, "pi", GenTextMessage(10, 1))
	if plain[0].Msg.Header("X-Encrypted") != "" {
		t.Error("passthrough marked encrypted")
	}
}

func TestCommunicatorSink(t *testing.T) {
	var sent []*mime.Message
	c := &Communicator{SinkTo: SinkFunc(func(m *mime.Message) error {
		sent = append(sent, m)
		return nil
	})}
	out := runProc(t, c, "pi", GenTextMessage(10, 1))
	if len(out) != 0 {
		t.Error("communicator re-emitted")
	}
	if len(sent) != 1 {
		t.Errorf("sent = %d", len(sent))
	}
	n, errs := c.Stats()
	if n != 1 || errs != 0 {
		t.Errorf("stats = %d, %d", n, errs)
	}
	if _, err := (&Communicator{}).Process(streamlet.Input{Msg: GenTextMessage(1, 1)}); err == nil {
		t.Error("nil sink accepted")
	}
}

func TestRegisterAll(t *testing.T) {
	dir := streamlet.NewDirectory()
	RegisterAll(dir)
	for _, lib := range []string{
		LibSwitch, LibMerge, LibCache, LibDownSample, LibGray16, LibGif2Jpeg,
		LibPS2Text, LibTextCompress, LibDecompress, LibEncrypt, LibDecrypt,
		LibPowerSave, LibRedirector,
	} {
		f, err := dir.Lookup(lib)
		if err != nil {
			t.Errorf("%s: %v", lib, err)
			continue
		}
		if f() == nil {
			t.Errorf("%s: nil processor", lib)
		}
	}
	client := streamlet.NewDirectory()
	RegisterClientPeers(client)
	if _, err := client.Lookup(CompressorPeerID); err != nil {
		t.Error(err)
	}
	if _, err := client.Lookup(EncryptorPeerID); err != nil {
		t.Error(err)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := MixedWorkload(20, 0.5, 42)
	b := MixedWorkload(20, 0.5, 42)
	if len(a) != 20 || len(b) != 20 {
		t.Fatal("workload size wrong")
	}
	for i := range a {
		if !bytes.Equal(a[i].Body(), b[i].Body()) {
			t.Fatalf("message %d differs between equal seeds", i)
		}
	}
	images := 0
	for _, m := range a {
		if typeIsImage(m.ContentType()) {
			images++
		}
	}
	if images == 0 || images == 20 {
		t.Errorf("image count %d not mixed", images)
	}
	c := MixedWorkload(20, 0.5, 43)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Body(), c[i].Body()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenTextSizeAndCompressibility(t *testing.T) {
	txt := GenText(4096, 7)
	if len(txt) != 4096 {
		t.Errorf("size = %d", len(txt))
	}
}

func TestDecodeTranscodedErrors(t *testing.T) {
	if _, err := DecodeTranscoded([]byte("not transcoded")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid header, corrupt deflate stream.
	if _, err := DecodeTranscoded([]byte("RJPG 4 4 4\nnot-deflate")); err == nil {
		t.Error("corrupt stream accepted")
	}
}

func TestGenPostScriptStructure(t *testing.T) {
	doc := string(GenPostScript(3000, 1))
	if !strings.HasPrefix(doc, "%!PS") {
		t.Error("missing PostScript header")
	}
	if !strings.Contains(doc, ") show") {
		t.Error("no show strings")
	}
	if !strings.Contains(doc, "showpage") {
		t.Error("no page breaks")
	}
}
