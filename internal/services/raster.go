// Package services implements the concrete service streamlets the thesis
// deploys on MobiGATE: the datatype-specific distillation entities of §4.3
// (switch, image down-sampling, map-to-16-grays, PostScript-to-text, text
// compressor, merge, power saving), the web-acceleration entities of §7.5
// (gif2jpeg-style transcoding, communicator), the redirector probe of §7.2,
// and supporting entities (cache, encryptor/decryptor).
//
// The paper transcoded GIF/JPEG with Java libraries; this package uses a
// self-contained synthetic raster format ("RAST") with real down-sampling,
// grayscale quantization, and lossy recompression, so the same code paths —
// CPU-bound lossy transforms that shrink payloads by datatype-specific
// factors — are exercised without external codecs (see DESIGN.md).
package services

import (
	"encoding/binary"
	"fmt"

	"mobigate/internal/mime"
)

// Raster media types.
var (
	// TypeRaster is the uncompressed synthetic raster format.
	TypeRaster = mime.MustParse("image/x-raster")
	// TypeRasterJPEG marks a lossily recompressed raster (the gif2jpeg
	// analogue output).
	TypeRasterJPEG = mime.MustParse("image/x-raster-jpeg")
)

const rasterMagic = "RAST"

// Raster is a simple interleaved RGB image.
type Raster struct {
	Width  int
	Height int
	// Pix holds RGB triplets, row-major: 3*Width*Height bytes.
	Pix []byte
}

// NewRaster allocates a black image.
func NewRaster(w, h int) *Raster {
	return &Raster{Width: w, Height: h, Pix: make([]byte, 3*w*h)}
}

// At returns the RGB triple at (x, y).
func (r *Raster) At(x, y int) (byte, byte, byte) {
	i := 3 * (y*r.Width + x)
	return r.Pix[i], r.Pix[i+1], r.Pix[i+2]
}

// Set assigns the RGB triple at (x, y).
func (r *Raster) Set(x, y int, red, green, blue byte) {
	i := 3 * (y*r.Width + x)
	r.Pix[i], r.Pix[i+1], r.Pix[i+2] = red, green, blue
}

// Encode serializes the raster: "RAST" magic, uint32 width and height,
// then the pixel data.
func (r *Raster) Encode() []byte {
	out := make([]byte, 4+8+len(r.Pix))
	copy(out, rasterMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(r.Width))
	binary.BigEndian.PutUint32(out[8:], uint32(r.Height))
	copy(out[12:], r.Pix)
	return out
}

// DecodeRaster parses an encoded raster.
func DecodeRaster(data []byte) (*Raster, error) {
	if len(data) < 12 || string(data[:4]) != rasterMagic {
		return nil, fmt.Errorf("services: not a raster image")
	}
	w := int(binary.BigEndian.Uint32(data[4:]))
	h := int(binary.BigEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("services: implausible raster dimensions %dx%d", w, h)
	}
	need := 3 * w * h
	if len(data)-12 < need {
		return nil, fmt.Errorf("services: truncated raster: have %d pixel bytes, need %d", len(data)-12, need)
	}
	return &Raster{Width: w, Height: h, Pix: data[12 : 12+need]}, nil
}

// Downsample halves each dimension by averaging 2x2 blocks — the lossy
// sample-rate reduction of the Image Down Sampling streamlet. Images with a
// dimension of 1 are returned unchanged.
func (r *Raster) Downsample() *Raster {
	if r.Width < 2 || r.Height < 2 {
		return r
	}
	w, h := r.Width/2, r.Height/2
	out := NewRaster(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sr, sg, sb int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					cr, cg, cb := r.At(2*x+dx, 2*y+dy)
					sr += int(cr)
					sg += int(cg)
					sb += int(cb)
				}
			}
			out.Set(x, y, byte(sr/4), byte(sg/4), byte(sb/4))
		}
	}
	return out
}

// Gray16 converts to 16 grayscale levels (the Map-to-16-grays streamlet):
// luminance is computed per pixel and quantized to 4 bits; the result is
// packed two pixels per byte, shrinking the payload 6x.
func (r *Raster) Gray16() *Gray16Image {
	n := r.Width * r.Height
	packed := make([]byte, (n+1)/2)
	for i := 0; i < n; i++ {
		red, green, blue := r.Pix[3*i], r.Pix[3*i+1], r.Pix[3*i+2]
		// Integer luminance approximation (ITU-R 601 weights).
		lum := (299*int(red) + 587*int(green) + 114*int(blue)) / 1000
		level := byte(lum >> 4) // 0..15
		if i%2 == 0 {
			packed[i/2] = level << 4
		} else {
			packed[i/2] |= level
		}
	}
	return &Gray16Image{Width: r.Width, Height: r.Height, Packed: packed}
}

// Gray16Image is a 16-level grayscale image, two pixels per byte.
type Gray16Image struct {
	Width  int
	Height int
	Packed []byte
}

// TypeGray16 is the media type of packed 16-gray images.
var TypeGray16 = mime.MustParse("image/x-gray16")

const gray16Magic = "GR16"

// Encode serializes the grayscale image.
func (g *Gray16Image) Encode() []byte {
	out := make([]byte, 4+8+len(g.Packed))
	copy(out, gray16Magic)
	binary.BigEndian.PutUint32(out[4:], uint32(g.Width))
	binary.BigEndian.PutUint32(out[8:], uint32(g.Height))
	copy(out[12:], g.Packed)
	return out
}

// DecodeGray16 parses an encoded 16-gray image.
func DecodeGray16(data []byte) (*Gray16Image, error) {
	if len(data) < 12 || string(data[:4]) != gray16Magic {
		return nil, fmt.Errorf("services: not a gray16 image")
	}
	w := int(binary.BigEndian.Uint32(data[4:]))
	h := int(binary.BigEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("services: implausible gray16 dimensions %dx%d", w, h)
	}
	need := (w*h + 1) / 2
	if len(data)-12 < need {
		return nil, fmt.Errorf("services: truncated gray16 image")
	}
	return &Gray16Image{Width: w, Height: h, Packed: data[12 : 12+need]}, nil
}

// Level returns the 0..15 gray level at (x, y).
func (g *Gray16Image) Level(x, y int) byte {
	i := y*g.Width + x
	b := g.Packed[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0F
}
