package services

import (
	"mobigate/internal/streamlet"
)

// Library names under which the standard services are advertised in the
// Streamlet Directory (§3.3.7). They match the `library` attributes used in
// the thesis's MCL examples.
const (
	LibSwitch       = "general/switch"
	LibMerge        = "general/merge"
	LibCache        = "general/cache"
	LibDownSample   = "image/downsample"
	LibGray16       = "image/gray16"
	LibGif2Jpeg     = "image/gif2jpeg"
	LibPS2Text      = "text/ps2text"
	LibTextCompress = "text/compress"
	LibFooter       = "text/footer"
	LibDecompress   = "text/decompress"
	LibEncrypt      = "crypto/encrypt"
	LibDecrypt      = "crypto/decrypt"
	LibPowerSave    = "system/powersave"
	LibRedirector   = "bench/redirector"
)

// RegisterAll advertises every self-contained service in the directory.
// The Communicator is not registered: it needs an explicit network sink and
// is wired by the server front-end.
func RegisterAll(dir *streamlet.Directory) {
	dir.Register(LibSwitch, func() streamlet.Processor { return NewDistillationSwitch() })
	dir.Register(LibMerge, func() streamlet.Processor { return &Merge{} })
	dir.Register(LibCache, func() streamlet.Processor { return &Cache{} })
	dir.Register(LibDownSample, func() streamlet.Processor { return &DownSampler{} })
	dir.Register(LibGray16, func() streamlet.Processor { return Gray16Mapper{} })
	dir.Register(LibGif2Jpeg, func() streamlet.Processor { return &Transcoder{} })
	dir.Register(LibPS2Text, func() streamlet.Processor { return PS2Text{} })
	dir.Register(LibTextCompress, func() streamlet.Processor { return &Compressor{} })
	dir.Register(LibFooter, func() streamlet.Processor { return &Footer{} })
	dir.Register(LibDecompress, func() streamlet.Processor { return Decompressor{} })
	dir.Register(LibEncrypt, func() streamlet.Processor { return &Encryptor{} })
	dir.Register(LibDecrypt, func() streamlet.Processor { return &Decryptor{} })
	dir.Register(LibPowerSave, func() streamlet.Processor { return &PowerSaving{} })
	dir.Register(LibRedirector, func() streamlet.Processor { return Redirector{} })
	dir.Register(LibSign, func() streamlet.Processor { return &Signer{} })
	dir.Register(LibVerify, func() streamlet.Processor { return &Verifier{} })

	// Capability traits (execution-plane contracts the coordination plane
	// enforces): Parallelizable marks pure per-message transforms legal for
	// `workers > 1` fan-out; Deterministic marks the content-addressable
	// ones the transcode cache may memoize (they also implement
	// cache.Keyer); PoolPreferred marks the expensive transcoders whose
	// instance pooling (§3.3.4) pays for its overhead — everything else is
	// constructed fresh per stream since the pooling ablation showed the
	// pool costs more than a trivial constructor.
	pure := streamlet.Traits{Parallelizable: true, Deterministic: true, PoolPreferred: true}
	dir.SetTraits(LibDownSample, pure)
	dir.SetTraits(LibGray16, pure)
	dir.SetTraits(LibGif2Jpeg, pure)
	dir.SetTraits(LibTextCompress, pure)
	dir.SetTraits(LibPS2Text, streamlet.Traits{Parallelizable: true, Deterministic: true})
	dir.SetTraits(LibFooter, streamlet.Traits{Parallelizable: true})
	dir.SetTraits(LibDecompress, streamlet.Traits{Parallelizable: true})
	dir.SetTraits(LibRedirector, streamlet.Traits{Parallelizable: true})
	dir.SetTraits(LibEncrypt, streamlet.Traits{Parallelizable: true, PoolPreferred: true})
	dir.SetTraits(LibDecrypt, streamlet.Traits{Parallelizable: true})
	dir.SetTraits(LibSign, streamlet.Traits{Parallelizable: true, PoolPreferred: true})
	dir.SetTraits(LibVerify, streamlet.Traits{Parallelizable: true})
	// Switch routes on per-message headers but is order-insensitive per
	// port; Merge and Cache carry cross-message state and stay serial.
}

// RegisterClientPeers advertises the reverse-processing streamlets a
// MobiGATE client needs, keyed by peer ID (§6.5).
func RegisterClientPeers(dir *streamlet.Directory) {
	dir.Register(CompressorPeerID, func() streamlet.Processor { return Decompressor{} })
	dir.Register(EncryptorPeerID, func() streamlet.Processor { return &Decryptor{} })
	dir.Register(SignerPeerID, func() streamlet.Processor { return &Verifier{} })
}
