package services

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mobigate/internal/streamlet"
)

// Integrity protection — a first concrete step on the §8.2.1 security
// recommendation: a Signer streamlet at the gateway authenticates each
// message body with an HMAC, and the Verifier peer at the client rejects
// anything tampered with in transit. Like every other adaptation, the pair
// composes through MCL and reverses through the Content-Peers chain.

// IntegrityHeader carries the hex-encoded HMAC-SHA256 tag.
const IntegrityHeader = "X-Integrity"

// SignerPeerID identifies the client-side verifier.
const SignerPeerID = "integrity/verify"

// LibSign and LibVerify are the directory library names.
const (
	LibSign   = "integrity/sign"
	LibVerify = "integrity/verify"
)

// Signer appends an HMAC-SHA256 tag over the message body.
type Signer struct {
	Key []byte
}

// PeerID implements streamlet.Peered.
func (*Signer) PeerID() string { return SignerPeerID }

// Process implements streamlet.Processor.
func (s *Signer) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	in.Msg.SetHeader(IntegrityHeader, tag(s.key(), in.Msg.Body()))
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// SetParam implements streamlet.Configurable: "key" sets the MAC key.
func (s *Signer) SetParam(name, value string) error {
	if name != "key" {
		return fmt.Errorf("sign: unknown parameter %q", name)
	}
	if value == "" {
		return fmt.Errorf("sign: key must not be empty")
	}
	s.Key = []byte(value)
	return nil
}

func (s *Signer) key() []byte {
	if len(s.Key) > 0 {
		return s.Key
	}
	return []byte("mobigate-integrity-key")
}

// Verifier checks and strips the integrity tag; a missing or wrong tag is
// an error and the message is dropped by the client runtime.
type Verifier struct {
	Key []byte
}

// Process implements streamlet.Processor.
func (v *Verifier) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	want := in.Msg.Header(IntegrityHeader)
	if want == "" {
		return nil, fmt.Errorf("verify: message %s has no integrity tag", in.Msg.ID)
	}
	key := v.Key
	if len(key) == 0 {
		key = []byte("mobigate-integrity-key")
	}
	got := tag(key, in.Msg.Body())
	if !hmac.Equal([]byte(got), []byte(want)) {
		return nil, fmt.Errorf("verify: message %s failed integrity check", in.Msg.ID)
	}
	in.Msg.DelHeader(IntegrityHeader)
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// SetParam implements streamlet.Configurable: "key" sets the MAC key.
func (v *Verifier) SetParam(name, value string) error {
	if name != "key" {
		return fmt.Errorf("verify: unknown parameter %q", name)
	}
	if value == "" {
		return fmt.Errorf("verify: key must not be empty")
	}
	v.Key = []byte(value)
	return nil
}

func tag(key, body []byte) string {
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

var (
	_ streamlet.Processor    = (*Signer)(nil)
	_ streamlet.Peered       = (*Signer)(nil)
	_ streamlet.Configurable = (*Signer)(nil)
	_ streamlet.Processor    = (*Verifier)(nil)
	_ streamlet.Configurable = (*Verifier)(nil)
)
