package services

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"strings"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

// Text media types.
var (
	TypePostScript = mime.MustParse("application/postscript")
	TypeRichText   = mime.MustParse("text/richtext")
	TypePlainText  = mime.MustParse("text/plain")
	TypeAnyText    = mime.MustParse("text/*")
)

// PS2Text is the PostScript-to-Text streamlet (§4.3): it discards format
// information and converts documents to rich text supported by most
// devices. The input is PostScript-like source: comment lines start with
// '%', layout commands are bare words, and document text appears inside
// parentheses followed by a `show` operator.
type PS2Text struct{}

// Process implements streamlet.Processor.
func (PS2Text) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	text := ExtractPostScriptText(string(in.Msg.Body()))
	in.Msg.SetBody([]byte(text))
	in.Msg.SetContentType(TypeRichText)
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// ExtractPostScriptText pulls the (...) show strings out of a PostScript-
// like document, joining them with newlines.
func ExtractPostScriptText(src string) string {
	var out strings.Builder
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		rest := line
		for {
			open := strings.IndexByte(rest, '(')
			if open < 0 {
				break
			}
			closing := strings.IndexByte(rest[open:], ')')
			if closing < 0 {
				break
			}
			content := rest[open+1 : open+closing]
			rest = rest[open+closing+1:]
			if strings.Contains(rest, "show") || strings.TrimSpace(rest) == "" {
				if out.Len() > 0 {
					out.WriteByte('\n')
				}
				out.WriteString(content)
			}
		}
	}
	return out.String()
}

// Compressor is the generic Text Compressor streamlet (§4.3, §7.5): a
// deflate compressor that can reduce text size by up to 75% or more on
// redundant content. Its transformation is reversed by the Decompressor
// peer at the client (§6.5).
type Compressor struct {
	// Level is the flate compression level (default BestSpeed).
	Level int
}

// CompressorPeerID identifies the client-side reverse streamlet.
const CompressorPeerID = "text/decompress"

// PeerID implements streamlet.Peered.
func (*Compressor) PeerID() string { return CompressorPeerID }

// Process implements streamlet.Processor.
func (c *Compressor) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	level := c.Level
	if level == 0 {
		level = flate.BestSpeed
	}
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(in.Msg.Body()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	in.Msg.SetHeader("X-Original-Length", fmt.Sprintf("%d", in.Msg.Len()))
	in.Msg.SetBody(buf.Bytes())
	in.Msg.SetHeader("Content-Encoding", "deflate")
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Decompressor is the client-side peer of Compressor.
type Decompressor struct{}

// Process implements streamlet.Processor.
func (Decompressor) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	if in.Msg.Header("Content-Encoding") != "deflate" {
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	}
	fr := flate.NewReader(bytes.NewReader(in.Msg.Body()))
	defer fr.Close()
	plain, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("decompress: %w", err)
	}
	in.Msg.SetBody(plain)
	in.Msg.DelHeader("Content-Encoding")
	in.Msg.DelHeader("X-Original-Length")
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Footer is the content-enrichment streamlet of the §4.3 family (the
// classic active-proxy example is advertisement or notice insertion): it
// appends an annotation to every text body. It is the data plane's
// zero-copy appender: the original body is retained untouched as a chain
// segment and only the footer bytes are written, into a pooled segment —
// no copy of the (arbitrarily large) payload. Non-text messages pass
// through unmodified.
type Footer struct {
	// Text is the annotation to append (default "\n-- via MobiGATE --\n").
	Text string
}

// Process implements streamlet.Processor.
func (f *Footer) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	if !in.Msg.ContentType().SubtypeOf(TypeAnyText) {
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	}
	txt := f.Text
	if txt == "" {
		txt = "\n-- via MobiGATE --\n"
	}
	copy(in.Msg.AppendBodyBuf(len(txt)), txt)
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// SetParam implements streamlet.Configurable: "text" sets the annotation.
func (f *Footer) SetParam(name, value string) error {
	if name != "text" {
		return fmt.Errorf("footer: unknown parameter %q", name)
	}
	f.Text = value
	return nil
}

var (
	_ streamlet.Processor    = (*Compressor)(nil)
	_ streamlet.Peered       = (*Compressor)(nil)
	_ streamlet.Processor    = Decompressor{}
	_ streamlet.Processor    = PS2Text{}
	_ streamlet.Processor    = (*Footer)(nil)
	_ streamlet.Configurable = (*Footer)(nil)
)
