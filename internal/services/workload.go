package services

import (
	"fmt"
	"math/rand"
	"strings"

	"mobigate/internal/mime"
)

// Workload generation: deterministic synthetic content standing in for the
// campus web traffic of the thesis testbed (§7.1, §7.5). Everything is
// seeded so experiments are reproducible run to run.

// GenRaster produces a w×h image with smooth gradients plus seeded noise —
// compressible but not trivially so, like photographic content.
func GenRaster(w, h int, seed int64) *Raster {
	rng := rand.New(rand.NewSource(seed))
	r := NewRaster(w, h)
	baseR, baseG, baseB := rng.Intn(256), rng.Intn(256), rng.Intn(256)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			noise := rng.Intn(32)
			r.Set(x, y,
				byte((baseR+x*255/max(1, w)+noise)%256),
				byte((baseG+y*255/max(1, h)+noise)%256),
				byte((baseB+(x+y)*127/max(1, w+h)+noise)%256),
			)
		}
	}
	return r
}

// GenImageMessage wraps a generated raster in a message typed image/gif —
// the type the distillation switch routes to the image branch (the body is
// our raster stand-in for GIF content).
func GenImageMessage(w, h int, seed int64) *mime.Message {
	m := mime.NewMessage(mime.MustParse("image/gif"), GenRaster(w, h, seed).Encode())
	return m
}

var loremWords = strings.Fields(`the quick brown fox jumps over a lazy dog while
mobile gateway proxies adapt wireless data flows with streamlet composition
and coordination channels carry typed messages between independent service
entities under dynamic network conditions`)

// GenText produces n bytes of word-salad text with roughly the
// compressibility of English prose.
func GenText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.Grow(n + 16)
	for b.Len() < n {
		b.WriteString(loremWords[rng.Intn(len(loremWords))])
		if rng.Intn(12) == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}

// GenTextMessage wraps generated text in a text/plain message.
func GenTextMessage(n int, seed int64) *mime.Message {
	return mime.NewMessage(TypePlainText, GenText(n, seed))
}

// GenPostScript produces a PostScript-like document of roughly n bytes with
// comments, layout commands, and (text) show strings.
func GenPostScript(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("%!PS-Adobe-3.0\n% synthetic document\n/Times-Roman findfont 12 scalefont setfont\n")
	line := 700
	for b.Len() < n {
		var words []string
		for i := 0; i < 5+rng.Intn(8); i++ {
			words = append(words, loremWords[rng.Intn(len(loremWords))])
		}
		fmt.Fprintf(&b, "72 %d moveto\n(%s) show\n", line, strings.Join(words, " "))
		line -= 14
		if line < 72 {
			b.WriteString("showpage\n")
			line = 700
		}
	}
	b.WriteString("showpage\n%%EOF\n")
	return []byte(b.String())
}

// GenPostScriptMessage wraps a generated document as application/postscript.
func GenPostScriptMessage(n int, seed int64) *mime.Message {
	return mime.NewMessage(TypePostScript, GenPostScript(n, seed))
}

// MixedWorkload generates the §7.5 flow: a deterministic interleaving of
// image and text messages. imageRatio in [0,1] sets the fraction of image
// messages.
func MixedWorkload(count int, imageRatio float64, seed int64) []*mime.Message {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*mime.Message, 0, count)
	for i := 0; i < count; i++ {
		if rng.Float64() < imageRatio {
			side := 64 + rng.Intn(64) // 64..127 px square
			out = append(out, GenImageMessage(side, side, seed+int64(i)))
		} else {
			size := 2048 + rng.Intn(8192)
			out = append(out, GenTextMessage(size, seed+int64(i)))
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
