package services

import (
	"container/list"
	"crypto/rc4"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

// Switch divides incoming messages based on the semantic type of the data
// (§4.3): the first route whose media type the message's Content-Type
// specializes wins; unmatched messages go to DefaultPort (dropped with an
// error when empty).
type Switch struct {
	Routes      []SwitchRoute
	DefaultPort string
}

// SwitchRoute maps a media-type pattern to an output port.
type SwitchRoute struct {
	Type mime.MediaType
	Port string
}

// NewDistillationSwitch builds the Figure 4-6 switch: images to po1,
// PostScript (and other text-like content) to po2.
func NewDistillationSwitch() *Switch {
	return &Switch{
		Routes: []SwitchRoute{
			{Type: mime.MustParse("image/*"), Port: "po1"},
			{Type: TypePostScript, Port: "po2"},
			{Type: mime.MustParse("text/*"), Port: "po2"},
		},
	}
}

// Process implements streamlet.Processor.
func (s *Switch) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	ct := in.Msg.ContentType()
	for _, r := range s.Routes {
		if ct.SubtypeOf(r.Type) {
			return []streamlet.Emission{{Port: r.Port, Msg: in.Msg}}, nil
		}
	}
	if s.DefaultPort != "" {
		return []streamlet.Emission{{Port: s.DefaultPort, Msg: in.Msg}}, nil
	}
	return nil, fmt.Errorf("switch: no route for content type %s", ct)
}

// Merge integrates different types of information into a whole body (§4.3):
// each incoming message is retyped as a part of the multipart/mixed flow
// and forwarded, tagged with its originating branch.
type Merge struct {
	mu    sync.Mutex
	parts uint64
}

// Process implements streamlet.Processor.
func (m *Merge) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	m.mu.Lock()
	m.parts++
	n := m.parts
	m.mu.Unlock()
	in.Msg.SetHeader("X-Part", strconv.FormatUint(n, 10))
	in.Msg.SetHeader("X-Part-Source", in.Port)
	in.Msg.SetHeader("X-Original-Type", in.Msg.Header(mime.HeaderContentType))
	in.Msg.SetContentType(mime.MustParse("multipart/mixed"))
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Parts returns how many parts this merge has emitted.
func (m *Merge) Parts() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.parts
}

// PowerSaving batches messages into transmission bursts so the client radio
// can sleep between bursts (§4.3's power-saving mechanism): messages are
// held until BurstSize have accumulated, then released together, each
// marked with the burst number.
type PowerSaving struct {
	BurstSize int

	mu     sync.Mutex
	held   []*mime.Message
	bursts uint64
}

// Process implements streamlet.Processor.
func (p *PowerSaving) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	size := p.BurstSize
	if size <= 1 {
		size = 4
	}
	p.held = append(p.held, in.Msg)
	if len(p.held) < size {
		return nil, nil // keep the message for the next burst
	}
	p.bursts++
	burst := strconv.FormatUint(p.bursts, 10)
	out := make([]streamlet.Emission, len(p.held))
	for i, m := range p.held {
		m.SetHeader("X-Burst", burst)
		out[i] = streamlet.Emission{Msg: m}
	}
	p.held = nil
	return out, nil
}

// Flush releases any held messages regardless of burst size.
func (p *PowerSaving) Flush() []streamlet.Emission {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]streamlet.Emission, len(p.held))
	for i, m := range p.held {
		out[i] = streamlet.Emission{Msg: m}
	}
	p.held = nil
	return out
}

// Cache remembers transformed content by body digest (§1.2.1's caching
// service entity): repeated payloads are marked as hits so downstream
// entities (or the evaluation) can skip redundant work. Entries are kept
// LRU-bounded.
type Cache struct {
	// MaxEntries bounds the cache (default 256).
	MaxEntries int

	mu     sync.Mutex
	order  *list.List // of string digests, front = most recent
	known  map[string]*list.Element
	hits   uint64
	misses uint64
}

// Process implements streamlet.Processor.
func (c *Cache) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	sum := sha256.Sum256(in.Msg.Body())
	key := hex.EncodeToString(sum[:8])

	c.mu.Lock()
	max := c.MaxEntries
	if max <= 0 {
		max = 256
	}
	if c.known == nil {
		c.known = make(map[string]*list.Element)
		c.order = list.New()
	}
	if el, ok := c.known[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		in.Msg.SetHeader("X-Cache", "HIT")
	} else {
		c.misses++
		c.known[key] = c.order.PushFront(key)
		for c.order.Len() > max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.known, back.Value.(string))
		}
		in.Msg.SetHeader("X-Cache", "MISS")
	}
	c.mu.Unlock()
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Redirector is the §7.2 overhead probe: it reads and parses the incoming
// message's header block (an unparse/parse round trip through the wire
// codec — the inherent per-streamlet cost of handling a message),
// re-encapsulates the necessary headers, and forwards the message while
// counting hops. The body is passed untouched: body transport cost is the
// message pool's concern (§7.3), not the streamlet's.
type Redirector struct{}

// Process implements streamlet.Processor.
func (Redirector) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	// Parse/unparse work on the header block.
	hdr := mime.NewMessage(in.Msg.ContentType(), nil)
	for _, k := range in.Msg.Headers() {
		hdr.SetHeader(k, in.Msg.Header(k))
	}
	parsed, err := mime.Decode(hdr.Encode())
	if err != nil {
		return nil, fmt.Errorf("redirector: %w", err)
	}
	hops, _ := strconv.Atoi(parsed.Header("X-Redirector-Hops"))
	in.Msg.SetHeader("X-Redirector-Hops", strconv.Itoa(hops+1))
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Encryptor applies an RC4 keystream to the body; the client's Decryptor
// peer reverses it. (RC4 is used as a cheap stdlib stream cipher to model
// the thesis's encryption entity, not as a security recommendation.)
type Encryptor struct {
	Key []byte
}

// EncryptorPeerID identifies the client-side decryptor.
const EncryptorPeerID = "crypto/decrypt"

// PeerID implements streamlet.Peered.
func (*Encryptor) PeerID() string { return EncryptorPeerID }

// Process implements streamlet.Processor.
func (e *Encryptor) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	out, err := rc4Apply(e.key(), in.Msg.Body())
	if err != nil {
		return nil, err
	}
	in.Msg.SetBody(out)
	in.Msg.SetHeader("X-Encrypted", "rc4")
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

func (e *Encryptor) key() []byte {
	if len(e.Key) > 0 {
		return e.Key
	}
	return []byte("mobigate-default-key")
}

// Decryptor reverses Encryptor.
type Decryptor struct {
	Key []byte
}

// Process implements streamlet.Processor.
func (d *Decryptor) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	if in.Msg.Header("X-Encrypted") != "rc4" {
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	}
	key := d.Key
	if len(key) == 0 {
		key = []byte("mobigate-default-key")
	}
	out, err := rc4Apply(key, in.Msg.Body())
	if err != nil {
		return nil, err
	}
	in.Msg.SetBody(out)
	in.Msg.DelHeader("X-Encrypted")
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

func rc4Apply(key, data []byte) ([]byte, error) {
	c, err := rc4.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	c.XORKeyStream(out, data)
	return out, nil
}

var (
	_ streamlet.Processor = (*Switch)(nil)
	_ streamlet.Processor = (*Merge)(nil)
	_ streamlet.Processor = (*PowerSaving)(nil)
	_ streamlet.Processor = (*Cache)(nil)
	_ streamlet.Processor = Redirector{}
	_ streamlet.Processor = (*Encryptor)(nil)
	_ streamlet.Peered    = (*Encryptor)(nil)
	_ streamlet.Processor = (*Decryptor)(nil)
)
