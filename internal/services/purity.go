package services

// Purity annotations: the deterministic, stateless, single-emission
// transforms advertise a content-address configuration string through
// cache.Keyer, so the stream runtime may memoize their results (see
// internal/cache). The string must cover every parameter the output
// depends on — including the documented default a zero field resolves to —
// so a runtime SetParam changes the key instead of serving stale results.
//
// Deliberately NOT cacheable: Switch (multi-output routing on header
// state), Merge (cross-message state), Cache (already a cache),
// Encryptor/Signer (keyed per session), PowerSaving (drops messages),
// Redirector (pass-through: the copy would cost more than the transform).

import "fmt"

// CacheKey implements cache.Keyer.
func (d *DownSampler) CacheKey() (string, bool) {
	passes := d.Passes
	if passes <= 0 {
		passes = 1
	}
	return fmt.Sprintf("%s?passes=%d", LibDownSample, passes), true
}

// CacheKey implements cache.Keyer.
func (Gray16Mapper) CacheKey() (string, bool) { return LibGray16, true }

// CacheKey implements cache.Keyer.
func (t *Transcoder) CacheKey() (string, bool) {
	q := t.Quality
	if q <= 0 || q > 8 {
		q = 4
	}
	return fmt.Sprintf("%s?quality=%d", LibGif2Jpeg, q), true
}

// CacheKey implements cache.Keyer.
func (c *Compressor) CacheKey() (string, bool) {
	level := c.Level
	if level == 0 {
		level = 1 // flate.BestSpeed, the Process default
	}
	return fmt.Sprintf("%s?level=%d", LibTextCompress, level), true
}

// CacheKey implements cache.Keyer.
func (PS2Text) CacheKey() (string, bool) { return LibPS2Text, true }
