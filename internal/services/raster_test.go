package services

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRasterEncodeDecodeRoundTrip(t *testing.T) {
	r := GenRaster(17, 9, 42)
	got, err := DecodeRaster(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 17 || got.Height != 9 || !bytes.Equal(got.Pix, r.Pix) {
		t.Error("round trip corrupted raster")
	}
}

func TestDecodeRasterErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x00\x00\x00\x05\x00\x00\x00\x05"),                              // bad magic
		[]byte("RAST\x00\x00\x00\x05\x00\x00\x00\x05"),                              // truncated pixels
		[]byte("RAST\x00\x00\x00\x00\x00\x00\x00\x05"),                              // zero width
		append([]byte("RAST\xff\xff\xff\xff\x00\x00\x00\x01"), make([]byte, 64)...), // huge width
	}
	for i, c := range cases {
		if _, err := DecodeRaster(c); err == nil {
			t.Errorf("case %d: bad raster accepted", i)
		}
	}
}

func TestSetAt(t *testing.T) {
	r := NewRaster(4, 4)
	r.Set(2, 3, 10, 20, 30)
	cr, cg, cb := r.At(2, 3)
	if cr != 10 || cg != 20 || cb != 30 {
		t.Errorf("At = %d,%d,%d", cr, cg, cb)
	}
}

func TestDownsampleHalvesAndAverages(t *testing.T) {
	r := NewRaster(4, 2)
	// Left 2x2 block: values 0, 2, 4, 6 → average 3 per component.
	r.Set(0, 0, 0, 0, 0)
	r.Set(1, 0, 2, 2, 2)
	r.Set(0, 1, 4, 4, 4)
	r.Set(1, 1, 6, 6, 6)
	// Right block constant 100.
	for _, xy := range [][2]int{{2, 0}, {3, 0}, {2, 1}, {3, 1}} {
		r.Set(xy[0], xy[1], 100, 100, 100)
	}
	d := r.Downsample()
	if d.Width != 2 || d.Height != 1 {
		t.Fatalf("dims = %dx%d", d.Width, d.Height)
	}
	if cr, _, _ := d.At(0, 0); cr != 3 {
		t.Errorf("left avg = %d", cr)
	}
	if cr, _, _ := d.At(1, 0); cr != 100 {
		t.Errorf("right avg = %d", cr)
	}
}

func TestDownsampleTinyImageUnchanged(t *testing.T) {
	r := NewRaster(1, 5)
	if d := r.Downsample(); d != r {
		t.Error("degenerate image was resampled")
	}
}

func TestDownsampleShrinksEncodedSize(t *testing.T) {
	r := GenRaster(64, 64, 7)
	d := r.Downsample()
	if len(d.Encode())*3 > len(r.Encode()) {
		t.Errorf("downsample only %d -> %d bytes", len(r.Encode()), len(d.Encode()))
	}
}

func TestGray16QuantizesAndPacks(t *testing.T) {
	r := NewRaster(2, 1)
	r.Set(0, 0, 255, 255, 255) // white → level 15
	r.Set(1, 0, 0, 0, 0)       // black → level 0
	g := r.Gray16()
	if g.Level(0, 0) != 15 || g.Level(1, 0) != 0 {
		t.Errorf("levels = %d, %d", g.Level(0, 0), g.Level(1, 0))
	}
	if len(g.Packed) != 1 {
		t.Errorf("packed bytes = %d", len(g.Packed))
	}
}

func TestGray16EncodeDecodeRoundTrip(t *testing.T) {
	g := GenRaster(33, 7, 3).Gray16()
	got, err := DecodeGray16(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 33 || got.Height != 7 || !bytes.Equal(got.Packed, g.Packed) {
		t.Error("gray16 round trip corrupted")
	}
	if _, err := DecodeGray16([]byte("nope")); err == nil {
		t.Error("bad gray16 accepted")
	}
	if _, err := DecodeGray16([]byte("GR16\x00\x00\x00\x09\x00\x00\x00\x09")); err == nil {
		t.Error("truncated gray16 accepted")
	}
}

func TestGray16SizeReduction(t *testing.T) {
	r := GenRaster(64, 64, 1)
	g := r.Gray16()
	ratio := float64(len(r.Encode())) / float64(len(g.Encode()))
	if ratio < 5.5 {
		t.Errorf("gray16 reduction ratio = %.2f, want ~6", ratio)
	}
}

// Property: encode/decode are inverses for arbitrary dimensions.
func TestRasterRoundTripQuick(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w := int(w8%40) + 1
		h := int(h8%40) + 1
		r := GenRaster(w, h, seed)
		got, err := DecodeRaster(r.Encode())
		return err == nil && got.Width == w && got.Height == h && bytes.Equal(got.Pix, r.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: gray levels are always < 16.
func TestGray16LevelsBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := GenRaster(13, 11, seed)
		g := r.Gray16()
		for y := 0; y < g.Height; y++ {
			for x := 0; x < g.Width; x++ {
				if g.Level(x, y) > 15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
