package services

import (
	"fmt"
	"strconv"

	"mobigate/internal/streamlet"
)

// Control interfaces (§8.2.1): the tunable services accept operation
// parameters from the coordinator — via the declaration's param-*
// attributes or Stream.SetParam at runtime — without any change to their
// data-port protocol.

// SetParam implements streamlet.Configurable: "passes" sets how many
// halvings each image undergoes.
func (d *DownSampler) SetParam(name, value string) error {
	switch name {
	case "passes":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 || n > 8 {
			return fmt.Errorf("downsample: passes must be 1..8, got %q", value)
		}
		d.Passes = n
		return nil
	}
	return fmt.Errorf("downsample: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "quality" sets the bits kept
// per sample (1..8).
func (t *Transcoder) SetParam(name, value string) error {
	switch name {
	case "quality":
		q, err := strconv.Atoi(value)
		if err != nil || q < 1 || q > 8 {
			return fmt.Errorf("transcode: quality must be 1..8, got %q", value)
		}
		t.Quality = q
		return nil
	}
	return fmt.Errorf("transcode: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "level" sets the flate
// compression level (1..9) — the compression-rate parameter §8.2.1 uses as
// its example.
func (c *Compressor) SetParam(name, value string) error {
	switch name {
	case "level":
		l, err := strconv.Atoi(value)
		if err != nil || l < 1 || l > 9 {
			return fmt.Errorf("compress: level must be 1..9, got %q", value)
		}
		c.Level = l
		return nil
	}
	return fmt.Errorf("compress: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "burst" sets the number of
// messages per transmission burst.
func (p *PowerSaving) SetParam(name, value string) error {
	switch name {
	case "burst":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("powersave: burst must be positive, got %q", value)
		}
		p.mu.Lock()
		p.BurstSize = n
		p.mu.Unlock()
		return nil
	}
	return fmt.Errorf("powersave: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "entries" bounds the cache.
func (c *Cache) SetParam(name, value string) error {
	switch name {
	case "entries":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("cache: entries must be positive, got %q", value)
		}
		c.mu.Lock()
		c.MaxEntries = n
		c.mu.Unlock()
		return nil
	}
	return fmt.Errorf("cache: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "key" sets the cipher key.
func (e *Encryptor) SetParam(name, value string) error {
	switch name {
	case "key":
		if value == "" {
			return fmt.Errorf("encrypt: key must not be empty")
		}
		e.Key = []byte(value)
		return nil
	}
	return fmt.Errorf("encrypt: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "key" sets the cipher key.
func (d *Decryptor) SetParam(name, value string) error {
	switch name {
	case "key":
		if value == "" {
			return fmt.Errorf("decrypt: key must not be empty")
		}
		d.Key = []byte(value)
		return nil
	}
	return fmt.Errorf("decrypt: unknown parameter %q", name)
}

// SetParam implements streamlet.Configurable: "default" names the port
// unmatched messages fall through to.
func (s *Switch) SetParam(name, value string) error {
	switch name {
	case "default":
		s.DefaultPort = value
		return nil
	}
	return fmt.Errorf("switch: unknown parameter %q", name)
}

var (
	_ streamlet.Configurable = (*DownSampler)(nil)
	_ streamlet.Configurable = (*Transcoder)(nil)
	_ streamlet.Configurable = (*Compressor)(nil)
	_ streamlet.Configurable = (*PowerSaving)(nil)
	_ streamlet.Configurable = (*Cache)(nil)
	_ streamlet.Configurable = (*Encryptor)(nil)
	_ streamlet.Configurable = (*Decryptor)(nil)
	_ streamlet.Configurable = (*Switch)(nil)
)
