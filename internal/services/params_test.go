package services

import (
	"strings"
	"testing"

	"mobigate/internal/streamlet"
)

func TestSetParamAccepted(t *testing.T) {
	cases := []struct {
		proc  streamlet.Configurable
		name  string
		value string
		check func() bool
	}{
		{&DownSampler{}, "passes", "3", nil},
		{&Transcoder{}, "quality", "2", nil},
		{&Compressor{}, "level", "9", nil},
		{&PowerSaving{}, "burst", "7", nil},
		{&Cache{}, "entries", "16", nil},
		{&Encryptor{}, "key", "sekrit", nil},
		{&Decryptor{}, "key", "sekrit", nil},
		{&Switch{}, "default", "po2", nil},
	}
	for _, c := range cases {
		if err := c.proc.SetParam(c.name, c.value); err != nil {
			t.Errorf("%T.SetParam(%s, %s): %v", c.proc, c.name, c.value, err)
		}
	}
	ds := &DownSampler{}
	if err := ds.SetParam("passes", "2"); err != nil {
		t.Fatal(err)
	}
	if ds.Passes != 2 {
		t.Errorf("Passes = %d", ds.Passes)
	}
}

func TestSetParamRejected(t *testing.T) {
	cases := []struct {
		proc  streamlet.Configurable
		name  string
		value string
	}{
		{&DownSampler{}, "passes", "0"},
		{&DownSampler{}, "passes", "nine"},
		{&DownSampler{}, "color", "red"},
		{&Transcoder{}, "quality", "12"},
		{&Compressor{}, "level", "0"},
		{&PowerSaving{}, "burst", "-1"},
		{&Cache{}, "entries", "x"},
		{&Encryptor{}, "key", ""},
		{&Switch{}, "route", "po9"},
	}
	for _, c := range cases {
		if err := c.proc.SetParam(c.name, c.value); err == nil {
			t.Errorf("%T.SetParam(%s, %q) accepted", c.proc, c.name, c.value)
		}
	}
}

func TestConfigureHelper(t *testing.T) {
	ds := &DownSampler{}
	if err := streamlet.Configure(ds, map[string]string{"passes": "4"}); err != nil {
		t.Fatal(err)
	}
	if ds.Passes != 4 {
		t.Errorf("Passes = %d", ds.Passes)
	}
	// Empty params are fine on any processor.
	if err := streamlet.Configure(Redirector{}, nil); err != nil {
		t.Errorf("empty configure: %v", err)
	}
	// Params on an unconfigurable processor are an error.
	err := streamlet.Configure(Redirector{}, map[string]string{"x": "1"})
	if err == nil || !strings.Contains(err.Error(), "control interface") {
		t.Errorf("unconfigurable accepted params: %v", err)
	}
	// A failing param reports its name.
	err = streamlet.Configure(ds, map[string]string{"passes": "bogus"})
	if err == nil || !strings.Contains(err.Error(), "passes") {
		t.Errorf("error lacks param name: %v", err)
	}
}

func TestParamAffectsProcessing(t *testing.T) {
	// Two passes shrink four times more than one.
	m1 := GenImageMessage(64, 64, 1)
	one := &DownSampler{}
	_ = one.SetParam("passes", "1")
	out1 := runProc(t, one, "pi", m1)

	m2 := GenImageMessage(64, 64, 1)
	two := &DownSampler{}
	_ = two.SetParam("passes", "2")
	out2 := runProc(t, two, "pi", m2)

	if out2[0].Msg.Len() >= out1[0].Msg.Len() {
		t.Errorf("passes param had no effect: %d vs %d", out1[0].Msg.Len(), out2[0].Msg.Len())
	}
}
