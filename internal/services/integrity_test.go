package services

import (
	"strings"
	"testing"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	body := GenText(2048, 3)
	m := mime.NewMessage(TypePlainText, append([]byte(nil), body...))
	signer := &Signer{Key: []byte("k1")}
	out := runProc(t, signer, "pi", m)
	if out[0].Msg.Header(IntegrityHeader) == "" {
		t.Fatal("no tag")
	}
	verifier := &Verifier{Key: []byte("k1")}
	back := runProc(t, verifier, "pi", out[0].Msg)
	if back[0].Msg.Header(IntegrityHeader) != "" {
		t.Error("tag not stripped")
	}
	if string(back[0].Msg.Body()) != string(body) {
		t.Error("body changed")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	m := mime.NewMessage(TypePlainText, []byte("authentic"))
	out := runProc(t, &Signer{}, "pi", m)
	out[0].Msg.Body()[0] = 'X' // tamper in transit
	if _, err := (&Verifier{}).Process(streamlet.Input{Msg: out[0].Msg}); err == nil {
		t.Error("tampered message verified")
	}
}

func TestVerifyRejectsMissingTagAndWrongKey(t *testing.T) {
	if _, err := (&Verifier{}).Process(streamlet.Input{Msg: mime.NewMessage(TypePlainText, []byte("bare"))}); err == nil {
		t.Error("untagged message verified")
	}
	m := mime.NewMessage(TypePlainText, []byte("keyed"))
	out := runProc(t, &Signer{Key: []byte("right")}, "pi", m)
	if _, err := (&Verifier{Key: []byte("wrong")}).Process(streamlet.Input{Msg: out[0].Msg}); err == nil {
		t.Error("wrong key verified")
	}
}

func TestIntegrityParams(t *testing.T) {
	s := &Signer{}
	if err := s.SetParam("key", "secret"); err != nil {
		t.Fatal(err)
	}
	if string(s.Key) != "secret" {
		t.Error("key not set")
	}
	if err := s.SetParam("key", ""); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.SetParam("mode", "x"); err == nil {
		t.Error("unknown param accepted")
	}
	v := &Verifier{}
	if err := v.SetParam("key", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := v.SetParam("nope", "x"); err == nil {
		t.Error("unknown verifier param accepted")
	}
}

func TestIntegrityRegistered(t *testing.T) {
	dir := streamlet.NewDirectory()
	RegisterAll(dir)
	for _, lib := range []string{LibSign, LibVerify} {
		if _, err := dir.Lookup(lib); err != nil {
			t.Error(err)
		}
	}
	peers := streamlet.NewDirectory()
	RegisterClientPeers(peers)
	if _, err := peers.Lookup(SignerPeerID); err != nil {
		t.Error(err)
	}
}

func TestIntegrityThroughClientChain(t *testing.T) {
	// Sign then compress at the gateway; client reverses both via the
	// peer chain: decompress first, then verify.
	body := GenText(1024, 9)
	m := mime.NewMessage(TypePlainText, append([]byte(nil), body...))

	sign := &Signer{}
	out := runProc(t, sign, "pi", m)
	out[0].Msg.PushPeer(SignerPeerID)
	comp := &Compressor{}
	out = runProc(t, comp, "pi", out[0].Msg)
	out[0].Msg.PushPeer(CompressorPeerID)

	// Reverse in LIFO order manually (the client package does this).
	back := runProc(t, Decompressor{}, "pi", out[0].Msg)
	got, err := (&Verifier{}).Process(streamlet.Input{Msg: back[0].Msg})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(string(got[0].Msg.Body()), string(body)) {
		t.Error("chain did not restore body")
	}
}
