package services

import (
	"fmt"
	"sync"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

// Sink consumes messages leaving the gateway (the network side of the
// Communicator streamlet). Implementations include the netem wireless link
// and TCP connections in the server front-end.
type Sink interface {
	SendMessage(m *mime.Message) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(m *mime.Message) error

// SendMessage calls f.
func (f SinkFunc) SendMessage(m *mime.Message) error { return f(m) }

// Communicator sends messages onto the network (§7.5). It terminates the
// server-side chain: processed messages leave through the Sink and are not
// re-emitted onto any port.
type Communicator struct {
	SinkTo Sink

	mu   sync.Mutex
	sent uint64
	errs uint64
}

// Process implements streamlet.Processor.
func (c *Communicator) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	if c.SinkTo == nil {
		return nil, fmt.Errorf("communicator: no sink configured")
	}
	err := c.SinkTo.SendMessage(in.Msg)
	c.mu.Lock()
	if err != nil {
		c.errs++
	} else {
		c.sent++
	}
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("communicator: %w", err)
	}
	return nil, nil
}

// Stats returns sent and errored message counts.
func (c *Communicator) Stats() (sent, errs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.errs
}

var _ streamlet.Processor = (*Communicator)(nil)
