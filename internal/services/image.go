package services

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

// DownSampler is the Image Down Sampling streamlet (§4.3): lossy
// compression of an image by reducing the sample rate. Passes = how many
// halvings to apply per message (1 → 4x fewer pixels).
type DownSampler struct {
	Passes int
}

// Process implements streamlet.Processor.
func (d *DownSampler) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	passes := d.Passes
	if passes <= 0 {
		passes = 1
	}
	r, err := DecodeRaster(in.Msg.Body())
	if err != nil {
		return nil, fmt.Errorf("downsample: %w", err)
	}
	for i := 0; i < passes; i++ {
		r = r.Downsample()
	}
	in.Msg.SetBody(r.Encode())
	in.Msg.SetContentType(TypeRaster)
	in.Msg.SetHeader("X-Downsampled", fmt.Sprintf("%d", passes))
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Gray16Mapper is the Map-to-16-grays streamlet (§4.3), supporting shallow
// grayscale displays (the LOW_GRAYS reaction).
type Gray16Mapper struct{}

// Process implements streamlet.Processor.
func (Gray16Mapper) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	r, err := DecodeRaster(in.Msg.Body())
	if err != nil {
		return nil, fmt.Errorf("gray16: %w", err)
	}
	g := r.Gray16()
	in.Msg.SetBody(g.Encode())
	in.Msg.SetContentType(TypeGray16)
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// Transcoder is the Gif2Jpeg streamlet of the §7.5 web-acceleration
// application: a lossy format conversion that trades fidelity for size. The
// raster is quantized (dropping the low bits of every sample) and
// deflate-compressed; Quality (1..8) sets how many bits survive.
type Transcoder struct {
	Quality int // bits kept per sample, default 4
}

// Process implements streamlet.Processor.
func (t *Transcoder) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	q := t.Quality
	if q <= 0 || q > 8 {
		q = 4
	}
	r, err := DecodeRaster(in.Msg.Body())
	if err != nil {
		return nil, fmt.Errorf("transcode: %w", err)
	}
	shift := uint(8 - q)
	quantized := make([]byte, len(r.Pix))
	for i, p := range r.Pix {
		quantized[i] = (p >> shift) << shift
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d %d %d\n", "RJPG", r.Width, r.Height, q)
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(quantized); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	in.Msg.SetBody(buf.Bytes())
	in.Msg.SetContentType(TypeRasterJPEG)
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

// DecodeTranscoded reverses Transcoder for verification: it returns the
// quantized raster.
func DecodeTranscoded(data []byte) (*Raster, error) {
	var magic string
	var w, h, q int
	buf := bytes.NewBuffer(data)
	if _, err := fmt.Fscanf(buf, "%s %d %d %d\n", &magic, &w, &h, &q); err != nil || magic != "RJPG" {
		return nil, fmt.Errorf("services: not a transcoded raster")
	}
	fr := flate.NewReader(buf)
	defer fr.Close()
	pix, err := io.ReadAll(fr)
	if err != nil {
		return nil, err
	}
	if len(pix) != 3*w*h {
		return nil, fmt.Errorf("services: transcoded pixel count %d != %d", len(pix), 3*w*h)
	}
	return &Raster{Width: w, Height: h, Pix: pix}, nil
}

var _ streamlet.Processor = (*DownSampler)(nil)
var _ streamlet.Processor = Gray16Mapper{}
var _ streamlet.Processor = (*Transcoder)(nil)

// typeIsImage reports whether a message carries image content.
func typeIsImage(t mime.MediaType) bool { return t.Type == "image" }
