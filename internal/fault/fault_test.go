package fault

import (
	"errors"
	"testing"
	"time"

	"mobigate/internal/streamlet"
)

// forward is a passthrough processor for wrapping.
var forward = streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
	return []streamlet.Emission{{Msg: in.Msg}}, nil
})

// drive runs n Process calls through the wrapped processor, swallowing
// injected panics like a supervisor would, and returns the outcome trace:
// 'p' panic, 'e' error, 'ok' success.
func drive(t *testing.T, p streamlet.Processor, n int) []string {
	t.Helper()
	trace := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out := func() (outcome string) {
			defer func() {
				if recover() != nil {
					outcome = "p"
				}
			}()
			if _, err := p.Process(streamlet.Input{}); err != nil {
				return "e"
			}
			return "ok"
		}()
		trace = append(trace, out)
	}
	return trace
}

// TestAtTrigger: call-index injection fires at exactly the listed 1-based
// calls and nowhere else.
func TestAtTrigger(t *testing.T) {
	inj := NewInjector(1, Spec{Kind: KindPanic, At: []uint64{2, 5}})
	trace := drive(t, inj.Wrap(forward), 6)
	want := []string{"ok", "p", "ok", "ok", "p", "ok"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if inj.Calls() != 6 {
		t.Errorf("Calls() = %d, want 6", inj.Calls())
	}
	panics, errs, stalls := inj.Injected()
	if panics != 2 || errs != 0 || stalls != 0 {
		t.Errorf("Injected() = (%d, %d, %d), want (2, 0, 0)", panics, errs, stalls)
	}
	if inj.Total() != 2 {
		t.Errorf("Total() = %d, want 2", inj.Total())
	}
}

// TestEveryTrigger: periodic injection fires on every Nth call.
func TestEveryTrigger(t *testing.T) {
	custom := errors.New("custom fault")
	inj := NewInjector(1, Spec{Kind: KindError, Every: 3, Err: custom})
	p := inj.Wrap(forward)
	for call := 1; call <= 9; call++ {
		_, err := p.Process(streamlet.Input{})
		if call%3 == 0 {
			if !errors.Is(err, custom) {
				t.Errorf("call %d: err = %v, want the custom error", call, err)
			}
		} else if err != nil {
			t.Errorf("call %d: unexpected error %v", call, err)
		}
	}
	if _, errs, _ := inj.Injected(); errs != 3 {
		t.Errorf("injected errors = %d, want 3", errs)
	}
}

// TestErrInjectedDefault: KindError without Spec.Err returns ErrInjected.
func TestErrInjectedDefault(t *testing.T) {
	inj := NewInjector(1, Spec{Kind: KindError, At: []uint64{1}})
	if _, err := inj.Wrap(forward).Process(streamlet.Input{}); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
}

// TestRateDeterminism: two injectors with the same seed and specs inject at
// identical call indexes; a different seed (very likely) diverges.
func TestRateDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		inj := NewInjector(seed, Spec{Kind: KindError, Rate: 0.3})
		return drive(t, inj.Wrap(forward), 200)
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %q vs %q", i+1, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 200-call traces")
	}
}

// TestStallInjection: KindStall delays the call past the configured stall
// but still processes the message (the supervisor's deadline, not the
// injector, decides whether the result is used).
func TestStallInjection(t *testing.T) {
	const stall = 20 * time.Millisecond
	inj := NewInjector(1, Spec{Kind: KindStall, At: []uint64{1}, Stall: stall})
	p := inj.Wrap(forward)
	start := time.Now()
	if _, err := p.Process(streamlet.Input{}); err != nil {
		t.Fatalf("stalled call failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("stalled call returned after %v, want >= %v", elapsed, stall)
	}
	if _, _, stalls := inj.Injected(); stalls != 1 {
		t.Errorf("injected stalls = %d, want 1", stalls)
	}
}
