// Package fault provides deterministic, seedable fault injectors for
// exercising the gateway's supervision subsystem: processor panics, errors
// and stalls wrapped around any streamlet Processor, plus link blackouts on
// emulated netem links. Injection points are chosen by call index (exactly
// reproducible), by period, or by seeded probability — never by wall clock
// — so a failing run replays identically. The injectors only *create*
// faults; containment and recovery live in internal/streamlet
// (supervisor.go) and internal/stream (supervise.go).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// mInjected counts every fault the injectors fire, of any kind.
var mInjected = obs.DefaultCounter(obs.MFaultInjectedTotal)

// Kind is the category of injected processor fault.
type Kind int

const (
	// KindPanic makes Process panic.
	KindPanic Kind = iota
	// KindError makes Process return an error.
	KindError
	// KindStall makes Process sleep past its deadline before continuing.
	KindStall

	kindCount
)

var kindNames = [...]string{"panic", "error", "stall"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the default error returned by KindError injections.
var ErrInjected = errors.New("fault: injected processor error")

// defaultStall is how long a KindStall injection sleeps when Spec.Stall is
// zero.
const defaultStall = 100 * time.Millisecond

// Spec describes one fault pattern. The three triggers compose (any match
// fires); leave a trigger zero to disable it.
type Spec struct {
	// Kind selects what happens at an injection point.
	Kind Kind
	// At lists 1-based Process-call indexes to inject at. Call indexes
	// advance on retries too, so a supervisor retry of an At-injected call
	// runs clean — the deterministic "transient fault" shape.
	At []uint64
	// Every injects at every Nth call (0 disables).
	Every uint64
	// Rate injects with this probability per call, driven by the
	// injector's Seed (0 disables).
	Rate float64
	// Err is returned by KindError injections (default ErrInjected).
	Err error
	// Stall is how long KindStall sleeps (default 100ms).
	Stall time.Duration
}

func (s *Spec) hits(call uint64, rng *rand.Rand) bool {
	for _, at := range s.At {
		if call == at {
			return true
		}
	}
	if s.Every > 0 && call%s.Every == 0 {
		return true
	}
	return s.Rate > 0 && rng.Float64() < s.Rate
}

// Injector decides, per Process call, whether to inject a fault. One
// injector carries one call counter; wrap one processor per injector to
// keep call indexes meaningful.
type Injector struct {
	mu    sync.Mutex
	specs []Spec
	rng   *rand.Rand

	calls  atomic.Uint64
	counts [kindCount]atomic.Uint64
}

// NewInjector creates an injector firing the given specs, with seeded
// randomness for Rate triggers.
func NewInjector(seed int64, specs ...Spec) *Injector {
	return &Injector{specs: specs, rng: rand.New(rand.NewSource(seed))}
}

// Calls returns how many Process calls the injector has observed.
func (i *Injector) Calls() uint64 { return i.calls.Load() }

// Injected returns how many faults of each kind have fired.
func (i *Injector) Injected() (panics, errs, stalls uint64) {
	return i.counts[KindPanic].Load(), i.counts[KindError].Load(), i.counts[KindStall].Load()
}

// Total returns the total number of injected faults.
func (i *Injector) Total() uint64 {
	var t uint64
	for k := range i.counts {
		t += i.counts[k].Load()
	}
	return t
}

// Wrap returns a processor that delegates to p, injecting this injector's
// faults. The wrapper exposes only the Process method; auxiliary interfaces
// of p (Configurable, Peered) are intentionally hidden — injection sits
// between the runtime and the processor exactly like a misbehaving
// implementation would.
func (i *Injector) Wrap(p streamlet.Processor) streamlet.Processor {
	return &wrapped{inj: i, p: p}
}

type wrapped struct {
	inj *Injector
	p   streamlet.Processor
}

func (w *wrapped) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	call := w.inj.calls.Add(1)
	w.inj.mu.Lock()
	fire := -1
	for idx := range w.inj.specs {
		if w.inj.specs[idx].hits(call, w.inj.rng) {
			fire = idx
			break
		}
	}
	var spec Spec
	if fire >= 0 {
		spec = w.inj.specs[fire]
	}
	w.inj.mu.Unlock()

	if fire >= 0 {
		w.inj.counts[spec.Kind].Add(1)
		mInjected.Inc()
		switch spec.Kind {
		case KindPanic:
			panic(fmt.Sprintf("fault: injected panic at call %d", call))
		case KindError:
			if spec.Err != nil {
				return nil, spec.Err
			}
			return nil, ErrInjected
		case KindStall:
			d := spec.Stall
			if d <= 0 {
				d = defaultStall
			}
			// Sleep, then process normally: if the supervisor's deadline is
			// shorter, it has already abandoned this execution and the
			// result is discarded by the executor.
			time.Sleep(d)
		}
	}
	return w.p.Process(in)
}

// Blackout takes the link down for the given duration, then restores it,
// blocking until restoration. Sends issued during the window park inside
// the link (and back up into the stream's queues) rather than being lost.
func Blackout(l *netem.Link, d time.Duration) {
	mInjected.Inc()
	l.SetDown(true)
	time.Sleep(d)
	l.SetDown(false)
}
