package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mobigate/internal/mime"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

func TestKeyOfDistinguishesConfigAndBody(t *testing.T) {
	body := []byte("the quick brown fox")
	base := KeyOf("image/gif2jpeg?quality=4", body)
	if KeyOf("image/gif2jpeg?quality=4", body) != base {
		t.Error("same (config, body) produced different keys")
	}
	if KeyOf("image/gif2jpeg?quality=5", body) == base {
		t.Error("different config produced the same key")
	}
	if KeyOf("image/gif2jpeg?quality=4", []byte("other body")) == base {
		t.Error("different body produced the same key")
	}
	// The separator byte keeps (config, body) unambiguous: moving a byte
	// across the boundary must change the key.
	if KeyOf("ab", []byte("cd")) == KeyOf("abc", []byte("d")) {
		t.Error("config/body boundary is ambiguous")
	}
}

func TestCacheGetPut(t *testing.T) {
	c := New(0)
	k := KeyOf("cfg", []byte("body"))
	if _, hit := c.Get(k); hit {
		t.Fatal("hit on empty cache")
	}
	want := Result{Port: "po", Body: []byte("out"), Headers: [][2]string{{"Content-Type", "image/jpeg"}}}
	c.Put(k, want)
	got, hit := c.Get(k)
	if !hit {
		t.Fatal("miss after Put")
	}
	if got.Port != want.Port || !bytes.Equal(got.Body, want.Body) || len(got.Headers) != 1 {
		t.Errorf("got %+v, want %+v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheReplaceExisting(t *testing.T) {
	c := New(0)
	k := KeyOf("cfg", []byte("body"))
	c.Put(k, Result{Body: []byte("first-version")})
	c.Put(k, Result{Body: []byte("second")})
	got, hit := c.Get(k)
	if !hit || string(got.Body) != "second" {
		t.Fatalf("got %q, hit=%v", got.Body, hit)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if st.Bytes != int64(len("second")) {
		t.Errorf("bytes = %d, want %d", st.Bytes, len("second"))
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Bound small enough that a few entries overflow one shard's budget.
	const max = shardCount * 64
	c := New(max)
	body := make([]byte, 48)
	// Keys land on random shards; push enough entries that some shard must
	// evict (budget 64 bytes, entries 48 bytes → second entry on any shard
	// evicts the first).
	var keys []Key
	for i := 0; i < 64; i++ {
		k := KeyOf(fmt.Sprintf("cfg-%d", i), body)
		c.Put(k, Result{Body: append([]byte(nil), body...)})
		keys = append(keys, k)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions with 64 entries over a 16x64-byte bound")
	}
	if st.Bytes > max {
		t.Errorf("bytes = %d exceeds bound %d", st.Bytes, max)
	}
	// The most recently inserted key on its shard must still be present.
	if _, hit := c.Get(keys[len(keys)-1]); !hit {
		t.Error("most recent entry was evicted")
	}
}

func TestCacheRejectsOversizedResult(t *testing.T) {
	c := New(shardCount * 16)
	k := KeyOf("cfg", []byte("b"))
	c.Put(k, Result{Body: make([]byte, 64)}) // > per-shard budget of 16
	if _, hit := c.Get(k); hit {
		t.Error("oversized result was stored")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := KeyOf(fmt.Sprintf("cfg-%d", i%17), []byte("body"))
				if i%3 == 0 {
					c.Put(k, Result{Body: []byte("result")})
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 17 {
		t.Errorf("entries = %d, want <= 17", st.Entries)
	}
}

func TestWrapOnlyDecoratesKeyers(t *testing.T) {
	c := New(0)
	plain := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})
	if _, wrapped := Wrap(plain, c).(*Memo); wrapped {
		t.Error("non-Keyer processor was wrapped")
	}
	tr := &services.Transcoder{}
	if got := Wrap(tr, nil); got != streamlet.Processor(tr) {
		t.Error("nil cache wrapped the processor")
	}
	memo, ok := Wrap(tr, c).(*Memo)
	if !ok {
		t.Fatal("Keyer processor was not wrapped")
	}
	if streamlet.Base(memo) != streamlet.Processor(tr) {
		t.Error("Base does not unwrap the memo to the transcoder")
	}
}

// TestMemoHitSkipsTransform is the acceptance property: a warm hit replays
// the result with zero transform executions, and the replayed message is
// byte- and header-identical to a fresh transform of the same input.
func TestMemoHitSkipsTransform(t *testing.T) {
	c := New(0)
	memo := Wrap(&services.Transcoder{}, c).(*Memo)
	input := func() *mime.Message { return services.GenImageMessage(32, 32, 3) }

	// Reference: what the raw transform produces.
	ref := input()
	if _, err := (&services.Transcoder{}).Process(streamlet.Input{Port: "pi", Msg: ref}); err != nil {
		t.Fatal(err)
	}

	cold := input()
	if _, err := memo.Process(streamlet.Input{Port: "pi", Msg: cold}); err != nil {
		t.Fatal(err)
	}
	if memo.InnerCalls() != 1 {
		t.Fatalf("inner calls after cold pass = %d, want 1", memo.InnerCalls())
	}

	warm := input()
	ems, err := memo.Process(streamlet.Input{Port: "pi", Msg: warm})
	if err != nil {
		t.Fatal(err)
	}
	if memo.InnerCalls() != 1 {
		t.Fatalf("inner calls after warm pass = %d, want 1 (hit ran the transform)", memo.InnerCalls())
	}
	if len(ems) != 1 || ems[0].Msg != warm {
		t.Fatalf("hit emission = %+v, want the input message", ems)
	}
	if !bytes.Equal(warm.Body(), ref.Body()) {
		t.Error("replayed body differs from a fresh transform")
	}
	if warm.ContentType().String() != ref.ContentType().String() {
		t.Errorf("replayed content type %s, want %s", warm.ContentType(), ref.ContentType())
	}
	for _, h := range ref.Headers() {
		if warm.Header(h) != ref.Header(h) {
			t.Errorf("header %s = %q, want %q", h, warm.Header(h), ref.Header(h))
		}
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestMemoConfigChangeMisses checks invalidation-by-key: changing a
// transform parameter must miss and re-run the transform.
func TestMemoConfigChangeMisses(t *testing.T) {
	c := New(0)
	tr := &services.Compressor{}
	memo := Wrap(tr, c).(*Memo)
	input := func() *mime.Message { return services.GenTextMessage(4<<10, 9) }

	if _, err := memo.Process(streamlet.Input{Port: "pi", Msg: input()}); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetParam("level", "9"); err != nil {
		t.Fatal(err)
	}
	if _, err := memo.Process(streamlet.Input{Port: "pi", Msg: input()}); err != nil {
		t.Fatal(err)
	}
	if memo.InnerCalls() != 2 {
		t.Fatalf("inner calls = %d, want 2 (config change must miss)", memo.InnerCalls())
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses", st)
	}
}

// TestMemoErrorNotCached checks that faulted transforms stay uncached.
func TestMemoErrorNotCached(t *testing.T) {
	c := New(0)
	// A transcoder fed text errors; the error must pass through and leave
	// the cache empty so a later fixed input is not poisoned.
	memo := Wrap(&services.Transcoder{}, c).(*Memo)
	bad := services.GenTextMessage(128, 1)
	if _, err := memo.Process(streamlet.Input{Port: "pi", Msg: bad}); err == nil {
		t.Fatal("transcoding text succeeded, want error")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after error, want 0", st.Entries)
	}
}
