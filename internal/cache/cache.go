// Package cache implements the content-addressed transcode cache: results
// of deterministic, stateless transforms (gray16, downsample, compress,
// gif2jpeg) keyed by the SHA-256 of streamlet configuration + input body.
// Web workloads repeat objects constantly — every client of a popular page
// pulls the same images — so a proxy that has transcoded a body once can
// serve every later request with a copy instead of re-running the
// transform. The cache is exogenous, like everything else on the
// coordination plane: service code never sees it; the stream runtime wraps
// eligible processors in a Memo decorator (see memo.go).
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"mobigate/internal/obs"
)

var (
	mHits      = obs.DefaultCounter(obs.MCacheHitsTotal)
	mMisses    = obs.DefaultCounter(obs.MCacheMissesTotal)
	mEvictions = obs.DefaultCounter(obs.MCacheEvictionsTotal)
	mEntries   = obs.DefaultIntGauge(obs.MCacheEntries)
	mBytes     = obs.DefaultIntGauge(obs.MCacheBytes)
)

// Key addresses one transform result: the SHA-256 of the transform's
// configuration string and the input body. Content addressing means two
// sessions requesting the same object through identically-configured
// streamlets share one entry, with no coordination.
type Key [sha256.Size]byte

// KeyOf derives the cache key for one (configuration, body) pair. The
// configuration string must capture every parameter the transform's output
// depends on (e.g. "image/gif2jpeg?quality=4"); a parameter change
// therefore changes the key, which is the entire invalidation story —
// stale entries are never served, they just age out of the LRU.
func KeyOf(config string, body []byte) Key {
	h := sha256.New()
	h.Write([]byte(config))
	h.Write([]byte{0})
	h.Write(body)
	var k Key
	h.Sum(k[:0])
	return k
}

// Result is one cached transform outcome: the output body plus the header
// fields the transform set (Content-Type changes, peer bookkeeping inputs
// like X-Original-Length). Replaying body + headers onto a fresh input
// message reproduces the transform's effect exactly, because eligible
// transforms are single-emission, in-place, and deterministic.
type Result struct {
	// Port is the emission port the transform used ("" = sole output).
	Port string
	// Body is the transformed body. Immutable once stored; Memo copies it
	// out on every hit so downstream recycling never corrupts the cache.
	Body []byte
	// Headers are the header fields the transform set or changed, in
	// application order.
	Headers [][2]string
}

func (r Result) size() int64 {
	n := int64(len(r.Body))
	for _, h := range r.Headers {
		n += int64(len(h[0]) + len(h[1]))
	}
	return n
}

// Stats is a point-in-time cache accounting snapshot.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

const shardCount = 16

// Cache is a sharded, byte-bounded, LRU-evicting content-addressed store.
// All methods are safe for concurrent use — parallel workers of several
// streamlets hit the same cache.
type Cache struct {
	maxBytes int64
	shards   [shardCount]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recent
	bytes   int64
}

type entry struct {
	key Key
	res Result
}

// DefaultMaxBytes bounds a cache created with New(0): 64 MiB of cached
// bodies, a deliberate fraction of the message pool's working set.
const DefaultMaxBytes = 64 << 20

// New creates a cache bounded to maxBytes of stored results (0 selects
// DefaultMaxBytes). The bound is split evenly across the shards.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	// The key is a SHA-256: any byte is uniformly distributed.
	return &c.shards[k[0]&(shardCount-1)]
}

// Get returns the cached result for k. The returned Result aliases the
// stored body — callers must copy before mutating (Memo does).
func (c *Cache) Get(k Key) (Result, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		mMisses.Inc()
		return Result{}, false
	}
	s.lru.MoveToFront(el)
	res := el.Value.(*entry).res
	s.mu.Unlock()
	c.hits.Add(1)
	mHits.Inc()
	return res, true
}

// Put stores a result under k, evicting least-recently-used entries from
// the shard until the byte bound holds. Results larger than a shard's
// entire budget are not stored. Storing an existing key replaces it.
func (c *Cache) Put(k Key, r Result) {
	sz := r.size()
	budget := c.maxBytes / shardCount
	if sz > budget {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		old := el.Value.(*entry)
		s.bytes -= old.res.size()
		mBytes.Add(old.res.size() * -1)
		old.res = r
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(&entry{key: k, res: r})
		mEntries.Add(1)
	}
	s.bytes += sz
	mBytes.Add(sz)
	var evicted int
	for s.bytes > budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, victim.key)
		s.bytes -= victim.res.size()
		mBytes.Add(victim.res.size() * -1)
		mEntries.Add(-1)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
		mEvictions.Add(uint64(evicted))
	}
}

// Stats returns the cache's cumulative and current accounting.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
