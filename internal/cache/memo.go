package cache

import (
	"sync/atomic"

	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// Keyer is implemented by processors whose Process is a pure function of
// the input body and their configuration — deterministic, stateless,
// single-emission, in-place. CacheKey returns the configuration string
// that, together with the body, addresses the result (it must change
// whenever a parameter that affects the output changes). ok=false opts out
// of caching for the current configuration.
type Keyer interface {
	CacheKey() (config string, ok bool)
}

// Memo decorates a Keyer processor with the content-addressed cache: a hit
// replays the stored body and headers onto the input message without
// calling the transform; a miss runs the transform and, when the outcome
// has the cacheable shape (one emission, same message, no error), stores
// it. The decorator is transparent to the runtime — streamlet.Base unwraps
// it for capability interfaces (Peered, Configurable) — and safe for
// concurrent Process calls when the inner processor is (parallel workers
// share one Memo).
type Memo struct {
	inner streamlet.Processor
	keyer Keyer
	cache *Cache

	calls atomic.Uint64
}

// Wrap decorates p with c when p advertises cacheability (implements
// Keyer); any other processor — and any processor when c is nil — is
// returned unchanged.
func Wrap(p streamlet.Processor, c *Cache) streamlet.Processor {
	if c == nil {
		return p
	}
	k, ok := p.(Keyer)
	if !ok {
		return p
	}
	return &Memo{inner: p, keyer: k, cache: c}
}

// Unwrap implements streamlet.Unwrapper.
func (m *Memo) Unwrap() streamlet.Processor { return m.inner }

// InnerCalls returns how many times the decorated transform actually ran —
// the counter the cache-hit acceptance test asserts stays flat while hits
// are served.
func (m *Memo) InnerCalls() uint64 { return m.calls.Load() }

// Process implements streamlet.Processor.
func (m *Memo) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	cfg, ok := m.keyer.CacheKey()
	if !ok || in.Msg == nil {
		return m.call(in)
	}
	key := KeyOf(cfg, in.Msg.Body())
	if res, hit := m.cache.Get(key); hit {
		for _, h := range res.Headers {
			in.Msg.SetHeader(h[0], h[1])
		}
		// The cached body is immutable and shared; the message gets its own
		// copy (SetBody marks it caller-owned, so downstream recycling never
		// touches it).
		in.Msg.SetBody(append([]byte(nil), res.Body...))
		if obs.SpansEnabled() {
			obs.FlightRecord(obs.FlightCacheHit, cfg, "", int64(len(res.Body)))
		}
		return []streamlet.Emission{{Port: res.Port, Msg: in.Msg}}, nil
	}
	if obs.SpansEnabled() {
		obs.FlightRecord(obs.FlightCacheMiss, cfg, "", int64(in.Msg.Len()))
	}
	// Miss: snapshot the headers so the transform's effect can be diffed
	// out afterwards. Eligible transforms only set/overwrite headers; one
	// that deleted a header would replay incorrectly and must not be a
	// Keyer.
	before := make(map[string]string, 8)
	for _, k := range in.Msg.Headers() {
		before[k] = in.Msg.Header(k)
	}
	ems, err := m.call(in)
	if err != nil || len(ems) != 1 || ems[0].Msg != in.Msg {
		// Not the cacheable shape (error, fan-out, or a fresh message whose
		// pool identity we must not capture); pass through uncached.
		return ems, err
	}
	var changed [][2]string
	for _, k := range in.Msg.Headers() {
		if v := in.Msg.Header(k); before[k] != v {
			changed = append(changed, [2]string{k, v})
		}
	}
	m.cache.Put(key, Result{
		Port:    ems[0].Port,
		Body:    append([]byte(nil), in.Msg.Body()...),
		Headers: changed,
	})
	return ems, err
}

func (m *Memo) call(in streamlet.Input) ([]streamlet.Emission, error) {
	m.calls.Add(1)
	return m.inner.Process(in)
}

// compile-time interface checks
var (
	_ streamlet.Processor = (*Memo)(nil)
	_ streamlet.Unwrapper = (*Memo)(nil)
)
